package experiments

// The multi-client serving workload: one session server hosting the
// join-based crossfilter for N concurrent clients over the same base data.
// The measurement behind the ISSUE 5 acceptance criterion — with the
// data-sized join build sides shared (instantiated once, verified by the
// registry counters) and only selection state private, the marginal cost of
// an additional session must be a small fraction of a full engine: steady-
// state brush cost per session within ~2x of the single-tenant delta path,
// and shared bytes amortized across every attached client.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// NewServeServer builds a session server over the join-based crossfilter
// with n sales rows ingested through the single-writer path.
func NewServeServer(n int, seed int64, cfg server.Config) (*server.Server, error) {
	srv, err := server.New(cfg, BuildIVMCrossfilterProgram())
	if err != nil {
		return nil, err
	}
	if err := srv.InsertRows("Sales", IVMSalesTuples(n, seed)); err != nil {
		return nil, err
	}
	return srv, nil
}

// ServeFanout measures the fan-out economics at one base size: attach
// `sessions` clients, warm every pipeline, then drive all clients' brushes
// and compare per-session steady-state cost against a dedicated
// single-tenant engine running the identical drag. Reported stats carry the
// share-registry counters (Builds must equal the number of distinct shared
// sides — instantiated once, not once per session) and the shared-vs-
// private memory split.
func ServeFanout(n, sessions, steps int, seed int64) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve — %d concurrent sessions over %d shared rows (join-based crossfilter)\n\n", sessions, n)
	stats := map[string]int64{}

	// Arm 1: the single-tenant delta path (the PR 2 engine) as baseline.
	eng, err := NewIVMEngine(n, seed, core.Config{})
	if err != nil {
		return Result{}, err
	}
	if _, err := eng.FeedStream(IVMBrushStream(2)); err != nil {
		return Result{}, err
	}
	open, steady, closeEvs := IVMBrushPhases(steps)
	if _, err := eng.FeedStream(open); err != nil {
		return Result{}, err
	}
	start := time.Now()
	if _, err := eng.FeedStream(steady); err != nil {
		return Result{}, err
	}
	singleUs := float64(time.Since(start).Microseconds()) / float64(len(steady))
	if _, err := eng.FeedStream(closeEvs); err != nil {
		return Result{}, err
	}
	singleBytes := eng.ApproxBytes()

	// Arm 2: the server. Attach cost is the one-time price of a client.
	srv, err := NewServeServer(n, seed, server.Config{})
	if err != nil {
		return Result{}, err
	}
	attachStart := time.Now()
	sess := make([]*server.Session, sessions)
	for i := range sess {
		if sess[i], err = srv.Attach(); err != nil {
			return Result{}, err
		}
		// One warm drag per session primes its pipelines (and, for the
		// first session, builds the shared states every later one reuses).
		if _, err := sess[i].FeedStream(IVMBrushStream(2)); err != nil {
			return Result{}, err
		}
	}
	attachMs := float64(time.Since(attachStart).Milliseconds()) / float64(sessions)

	// Steady state, interleaved: every session's brush advances round-robin
	// (all sessions attached and hot), one goroutine — the clean per-event
	// cost without scheduler noise.
	for i := range sess {
		if _, err := sess[i].FeedStream(open); err != nil {
			return Result{}, err
		}
	}
	start = time.Now()
	for k := range steady {
		for i := range sess {
			if _, err := sess[i].Feed(steady[k]); err != nil {
				return Result{}, err
			}
		}
	}
	interleavedUs := float64(time.Since(start).Microseconds()) / float64(len(steady)*sessions)
	for i := range sess {
		if _, err := sess[i].FeedStream(closeEvs); err != nil {
			return Result{}, err
		}
	}

	// Steady state, concurrent: every session brushes from its own
	// goroutine; wall-clock per event shows what concurrent readers cost
	// (shared states are probed under a read lock).
	for i := range sess {
		if _, err := sess[i].FeedStream(open); err != nil {
			return Result{}, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	start = time.Now()
	for i := range sess {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sess[i].FeedStream(steady)
		}(i)
	}
	wg.Wait()
	concurrentWallUs := float64(time.Since(start).Microseconds()) / float64(len(steady)*sessions)
	for i := range sess {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		if _, err := sess[i].FeedStream(closeEvs); err != nil {
			return Result{}, err
		}
	}

	st := srv.Stats()
	ratio := interleavedUs / singleUs
	privPer := st.PrivateBytesTotal / int64(sessions)
	// Dedicated-fleet estimate: each single-tenant engine holds its own
	// store plus at least one copy of the data-sized build-side state the
	// server shares (conservative — it actually holds one copy per joining
	// view, 4 here). groupBytes isolates the registry's share of SharedBytes.
	groupBytes := st.SharedBytes - srv.Base().ApproxBytes()
	dedicated := (singleBytes + groupBytes) * int64(sessions)
	amortized := st.SharedBytes + st.PrivateBytesTotal

	fmt.Fprintf(&b, "single-tenant steady brush:        %10.1f µs/event (engine ~%d KB + build states)\n", singleUs, singleBytes/1024)
	fmt.Fprintf(&b, "per-session steady brush (serial): %10.1f µs/event   (%.2fx single-tenant)\n", interleavedUs, ratio)
	fmt.Fprintf(&b, "per-session steady brush (conc.):  %10.1f µs wall/event across %d goroutines\n", concurrentWallUs, sessions)
	fmt.Fprintf(&b, "session attach (prime pipelines):  %10.1f ms/session\n\n", attachMs)
	fmt.Fprintf(&b, "shared state: %d side(s) built %d time(s), reused %d times, %d rows held\n",
		st.SharedSides, st.Share.Builds, st.Share.Reuses, st.SharedRows)
	fmt.Fprintf(&b, "memory: shared %d KB + %d KB/session private  (vs ~%d KB for %d dedicated engines — %.1fx less)\n",
		st.SharedBytes/1024, privPer/1024, dedicated/1024, sessions, float64(dedicated)/float64(amortized))

	stats["single_us_per_event"] = int64(singleUs)
	stats["per_session_us_per_event"] = int64(interleavedUs)
	stats["concurrent_wall_us_per_event"] = int64(concurrentWallUs)
	stats["per_session_vs_single_x100"] = int64(ratio * 100)
	stats["attach_ms_per_session"] = int64(attachMs)
	stats["sessions"] = int64(sessions)
	stats["rows"] = int64(n)
	stats["shared_sides"] = int64(st.SharedSides)
	stats["shared_builds"] = st.Share.Builds
	stats["shared_reuses"] = st.Share.Reuses
	stats["shared_rows"] = st.SharedRows
	stats["shared_bytes"] = st.SharedBytes
	stats["private_bytes_per_session"] = privPer
	stats["dedicated_engines_bytes"] = dedicated
	stats["amortized_bytes"] = amortized
	return Result{ID: "serve", Title: "Multi-client session server fan-out", Output: b.String(), Stats: stats}, nil
}

// ServeScaling runs the fan-out measurement at several session counts for
// one base size (the BENCH_serve.json trajectory).
func ServeScaling(n int, sessionCounts []int, steps int, seed int64) (Result, error) {
	var b strings.Builder
	stats := map[string]int64{}
	for _, k := range sessionCounts {
		r, err := ServeFanout(n, k, steps, seed)
		if err != nil {
			return Result{}, err
		}
		b.WriteString(r.Output)
		b.WriteString("\n")
		for key, v := range r.Stats {
			stats[fmt.Sprintf("n%d_s%d_%s", n, k, key)] = v
		}
	}
	b.WriteString("Marginal cost per additional session is the private slice only: the\nbase data, the selection-independent charts, and the data-sized join\nbuild sides are instantiated once and shared by every attached client.\n")
	return Result{ID: "serve", Title: "Multi-client session server fan-out", Output: b.String(), Stats: stats}, nil
}
