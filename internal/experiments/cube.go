package experiments

// The data-cube workload: the join-based crossfilter with every chart
// cube-eligible (COUNT/SUM aggregates over the Sales ⋈ selected_months
// equi-join, grouped by a fact-side dimension), so a brush move is answered
// from per-chart index tiles in O(bins) instead of re-streaming the changed
// months' joined rows. This is the benchmark behind the ISSUE 8 acceptance
// criterion: steady brush ≤ 100 µs/event at 1M rows, flat (≤ 2x drift)
// across 10k/100k/1M.
//
// The stream is repeated short drags rather than one long extending brush:
// the compound event table accumulates max(x+dx) over a drag, so a single
// drag's selection can only grow and saturates at 12 months — after which
// moves are no-ops that measure nothing. Seven events per drag, each
// changing the selection, is the honest steady state.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/events"
)

// BuildCubeProgram returns the DeVIL program of the cube crossfilter: four
// grouped charts over the brushed month selection plus a rendered bar chart
// joining the region chart against a pixel axis. Unlike the IVM program it
// has no ranking self-joins — those have a non-equi residual and are a
// ranking feature, not a brush-move workload.
func BuildCubeProgram() string {
	var b strings.Builder
	b.WriteString(crossfilterPrelude)
	for _, dim := range IVMDims {
		fmt.Fprintf(&b, `
FILT_%[1]s = SELECT s.%[1]s AS grp, sum(s.revenue) AS total, count(*) AS n
  FROM Sales AS s, selected_months AS m
  WHERE s.month = m.month
  GROUP BY s.%[1]s;
`, dim)
	}
	b.WriteString(`
CREATE TABLE RegionAxis (region string, x int);
INSERT INTO RegionAxis VALUES ('AMERICA', 10), ('ASIA', 80), ('EUROPE', 150), ('AFRICA', 220), ('MIDEAST', 290);
BARS = SELECT ra.x AS x, 280 - f.total / 3000 AS y, 24 AS width,
       f.total / 3000 AS height, 'green' AS fill
  FROM FILT_region AS f, RegionAxis AS ra
  WHERE f.grp = ra.region;
P = render(SELECT x, y, width, height, fill FROM BARS, 'rect');
`)
	return b.String()
}

// NewCubeEngine loads the cube crossfilter over n rows.
func NewCubeEngine(n int, seed int64, cfg core.Config) (*core.Engine, error) {
	if cfg.Width == 0 {
		cfg.Width, cfg.Height = 320, 300
	}
	e := core.New(cfg)
	if err := e.LoadProgram(BuildCubeProgram()); err != nil {
		return nil, err
	}
	if err := LoadIVMSales(e, n, seed); err != nil {
		return nil, err
	}
	e.Commit()
	return e, nil
}

// CubeDragStream returns `drags` repeated short brushes over the month axis:
// down inside month 1, five moves each extending the selection by one month,
// release. Every event changes the selection, so per-event cost measures
// real brush-move work, not empty-delta skips.
func CubeDragStream(drags int) events.Stream {
	var s events.Stream
	t := int64(2)
	for d := 0; d < drags; d++ {
		s = append(s, events.Mouse(events.MouseDown, t, 45, 45))
		t++
		for k := 1; k <= 5; k++ {
			s = append(s, events.Mouse(events.MouseMove, t, 45+int64(20*k), 45))
			t++
		}
		s = append(s, events.Mouse(events.MouseUp, t, 145, 45))
		t++
	}
	return s
}

// CubeScaling measures steady-state brush latency per event with the cube
// path against the same program on the ordinary delta pipeline
// (Config.DisableCube), at each base size. Both arms are warmed first and
// measured after a forced GC, so a background collection of the loaded heap
// does not land in the timing window. It reports per-size latency, the
// flatness of the cube arm across sizes, tile memory, and the events-to-
// break-even amortization of the tile build.
func CubeScaling(sizes []int, drags int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("Data cubes — per-event brush latency, index tiles vs delta pipeline\n")
	fmt.Fprintf(&b, "(cube crossfilter, %d tiled charts, repeated %d-event drags)\n\n", len(IVMDims), len(CubeDragStream(1)))
	stats := map[string]int64{}
	var flatMin, flatMax float64
	for _, n := range sizes {
		var steadyUs, coldUs [2]float64 // [cube, delta-pipeline]
		var tileBytes, tiles, hits, bins int64
		for arm, noCube := range []bool{false, true} {
			e, err := NewCubeEngine(n, seed, core.Config{DisableCube: noCube})
			if err != nil {
				return Result{}, err
			}
			// Cold pass: one drag pays priming plus (cube arm) the tile
			// build; the difference between arms is the cube's upfront cost.
			cold := CubeDragStream(1)
			start := time.Now()
			if _, err := e.FeedStream(cold); err != nil {
				return Result{}, err
			}
			coldUs[arm] = float64(time.Since(start).Microseconds())
			// Steady state: the baseline arm re-streams the brushed months'
			// joined rows per event, so it gets a small event budget at
			// large n; the cube arm is cheap enough to repeat for stable
			// numbers.
			steadyDrags, reps := drags, 6
			if noCube {
				steadyDrags, reps = min(drags, 3), 2
			}
			steady := CubeDragStream(steadyDrags)
			if _, err := e.FeedStream(steady); err != nil { // warm
				return Result{}, err
			}
			e.ResetStats()
			runtime.GC()
			start = time.Now()
			for r := 0; r < reps; r++ {
				if _, err := e.FeedStream(steady); err != nil {
					return Result{}, err
				}
			}
			steadyUs[arm] = float64(time.Since(start).Microseconds()) / float64(reps*len(steady))
			s := e.StatsSnapshot()
			if noCube {
				if s.Cube.Hits != 0 {
					return Result{}, fmt.Errorf("baseline arm answered %d brush moves from tiles", s.Cube.Hits)
				}
			} else {
				// Guard: the measurement is meaningless if the charts fell
				// back to the ordinary pipeline.
				if s.Cube.Hits == 0 || s.Cube.Fallbacks != 0 {
					return Result{}, fmt.Errorf("cube arm not engaged: %+v", s.Cube)
				}
				tileBytes, hits, bins = s.Cube.TileBytes, s.Cube.Hits, s.Cube.BinsAnswered
				tiles = int64(len(IVMDims))
			}
		}
		savings := steadyUs[1] - steadyUs[0]
		breakeven := int64(0)
		if extra := coldUs[0] - coldUs[1]; extra > 0 && savings > 0 {
			breakeven = int64(extra/savings) + 1
		}
		fmt.Fprintf(&b, "%8d rows: cube %7.1f µs/event   delta pipeline %10.1f µs/event   speedup %6.1fx   break-even %d events   tiles %.1f KB (%d charts)\n",
			n, steadyUs[0], steadyUs[1], steadyUs[1]/steadyUs[0], breakeven, float64(tileBytes)/1024, tiles)
		stats[fmt.Sprintf("n%d_cube_us_per_event", n)] = int64(steadyUs[0])
		stats[fmt.Sprintf("n%d_delta_us_per_event", n)] = int64(steadyUs[1])
		stats[fmt.Sprintf("n%d_speedup_x10", n)] = int64(steadyUs[1] / steadyUs[0] * 10)
		stats[fmt.Sprintf("n%d_breakeven_events", n)] = breakeven
		stats[fmt.Sprintf("n%d_tile_bytes", n)] = tileBytes
		stats[fmt.Sprintf("n%d_tile_bytes_per_chart", n)] = tileBytes / tiles
		stats[fmt.Sprintf("n%d_cube_hits", n)] = hits
		stats[fmt.Sprintf("n%d_bins_answered", n)] = bins
		if flatMin == 0 || steadyUs[0] < flatMin {
			flatMin = steadyUs[0]
		}
		if steadyUs[0] > flatMax {
			flatMax = steadyUs[0]
		}
	}
	if flatMin > 0 {
		stats["flatness_x100"] = int64(flatMax / flatMin * 100)
		fmt.Fprintf(&b, "\ncube-arm flatness across sizes: %.2fx (max/min µs per event)\n", flatMax/flatMin)
	}
	b.WriteString("\nEach brush move rescales per-chart (month-bin × group) tiles — two\nprefix-sum subtractions per output group — so per-event cost is O(bins),\nindependent of the data size. The delta pipeline instead re-streams every\njoined row of the changed months: O(rows/12) per event. Tiles are\nmaintained by fact-side deltas (inserts, undo), never invalidated.\n")
	return Result{ID: "cube", Title: "Data-cube index tiles (per-chart O(bins) brushing)", Output: b.String(), Stats: stats}, nil
}
