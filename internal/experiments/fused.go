package experiments

// The operator-fusion workload: the cube crossfilter program pinned to the
// plain delta pipeline (Config.DisableCube on both arms), measuring fused
// join→aggregate streaming against the row-at-a-time apply path
// (Config.DisableFusion). This is the benchmark behind the ISSUE 9
// acceptance criterion: steady-state brushing on the non-cube delta path at
// 1M rows must improve ≥ 2x µs/event over the DisableFusion arm, and the
// ablation arm must reproduce the pre-fusion delta-pipeline trajectory
// (BENCH_cube.json's n*_delta_us_per_event series).

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
)

// FusedScaling measures steady-state brush latency per event on the delta
// pipeline with fused operators against the same program with fusion
// disabled, at each base size. Both arms run with the cube rewrite off so
// the measurement isolates the aggregate-apply inner loop; both are warmed
// and measured after a forced GC. Engine counters guard that each arm took
// the path it claims to measure.
func FusedScaling(sizes []int, drags int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("Operator fusion — per-event brush latency, fused vs row-at-a-time applies\n")
	fmt.Fprintf(&b, "(cube crossfilter on the delta pipeline, %d charts, repeated %d-event drags)\n\n", len(IVMDims), len(CubeDragStream(1)))
	stats := map[string]int64{}
	for _, n := range sizes {
		var steadyUs [2]float64 // [fused, row path]
		var batchRows, fusedApplies, rowFallbacks int64
		for arm, noFusion := range []bool{false, true} {
			e, err := NewCubeEngine(n, seed, core.Config{DisableCube: true, DisableFusion: noFusion})
			if err != nil {
				return Result{}, err
			}
			// Warm drag: primes the stateful pipelines.
			if _, err := e.FeedStream(CubeDragStream(1)); err != nil {
				return Result{}, err
			}
			// Both arms re-stream the brushed months' joined rows per event
			// (O(rows/12)), so both get the same modest event budget.
			steady := CubeDragStream(min(drags, 3))
			if _, err := e.FeedStream(steady); err != nil { // warm
				return Result{}, err
			}
			e.ResetStats()
			runtime.GC()
			const reps = 2
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := e.FeedStream(steady); err != nil {
					return Result{}, err
				}
			}
			steadyUs[arm] = float64(time.Since(start).Microseconds()) / float64(reps*len(steady))
			s := e.StatsSnapshot()
			if s.Cube.Hits != 0 {
				return Result{}, fmt.Errorf("arm %d answered %d brush moves from tiles; the fusion bench must stay on the delta pipeline", arm, s.Cube.Hits)
			}
			if noFusion {
				// The ablation arm must have taken the row path for the
				// fusible applies it skipped.
				if s.Exec.FusedApplies != 0 || s.Exec.RowFallbacks == 0 {
					return Result{}, fmt.Errorf("row arm not on the row path: %+v", s.Exec)
				}
				rowFallbacks = s.Exec.RowFallbacks
			} else {
				// The fused arm must have streamed everything: fused applies
				// accumulate, no fallback ever fires.
				if s.Exec.FusedApplies == 0 || s.Exec.BatchRows == 0 || s.Exec.RowFallbacks != 0 {
					return Result{}, fmt.Errorf("fused arm not engaged: %+v", s.Exec)
				}
				batchRows, fusedApplies = s.Exec.BatchRows, s.Exec.FusedApplies
			}
		}
		speedup := steadyUs[1] / steadyUs[0]
		fmt.Fprintf(&b, "%8d rows: fused %10.1f µs/event   row path %10.1f µs/event   speedup %5.1fx   (%d rows through %d fused applies)\n",
			n, steadyUs[0], steadyUs[1], speedup, batchRows, fusedApplies)
		stats[fmt.Sprintf("n%d_fused_us_per_event", n)] = int64(steadyUs[0])
		stats[fmt.Sprintf("n%d_rowpath_us_per_event", n)] = int64(steadyUs[1])
		stats[fmt.Sprintf("n%d_speedup_x10", n)] = int64(speedup * 10)
		stats[fmt.Sprintf("n%d_batch_rows", n)] = batchRows
		stats[fmt.Sprintf("n%d_fused_applies", n)] = fusedApplies
		stats[fmt.Sprintf("n%d_row_fallbacks", n)] = rowFallbacks
	}
	b.WriteString("\nA brush move deltas the month selection; each chart's join→aggregate\nchain streams the joined change rows straight into its group accumulators\n(one reused scratch tuple, monomorphic group-key and argument loops). The\nrow-path arm materializes the same delta as a tuple bag first and walks it\nthrough the generic expression evaluator — identical results, measured by\nthe parity wall, so the gap is pure apply-loop overhead.\n")
	return Result{ID: "fused", Title: "Fused delta operators (join→aggregate streaming)", Output: b.String(), Stats: stats}, nil
}
