package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
)

// BuildBrushingProgram generates the Figure 2 / DeVIL 1-3 linked-brushing
// program over n synthetic products: a revenue/profit scatterplot linked to
// a price histogram through the selected view, with a mouse-drag selection
// interaction. Revenue and profit span [0,100]; the scatterplot maps
// revenue to x∈[20,380] and profit to y∈[280,20].
func BuildBrushingProgram(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("CREATE TABLE Sales (productId int, price float, profit float, revenue float, productName string);\n")
	b.WriteString("INSERT INTO Sales VALUES\n")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  (%d, %.2f, %.2f, %.2f, 'p%d')",
			i, 20+rng.Float64()*80, rng.Float64()*100, rng.Float64()*100, i)
	}
	b.WriteString(";\n")
	b.WriteString(`
CREATE TABLE scale_x (lo float, hi float);
INSERT INTO scale_x VALUES (0, 100);
CREATE TABLE scale_y (lo float, hi float);
INSERT INTO scale_y VALUES (0, 100);

-- DeVIL 1: static scatterplot
SPLOT_POINTS =
  SELECT 4 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy;

-- DeVIL 2: the drag compound event
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    WHERE FORALL m IN M m.y > 5
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

-- DeVIL 3: hit testing against the pre-interaction marks
selected =
  SELECT DISTINCT SP.productId
  FROM C, SPLOT_POINTS@vnow-1 AS SP
  WHERE in_rectangle(SP.center_x, SP.center_y,
        (SELECT min(x) FROM C), (SELECT min(y) FROM C),
        (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C));

SPLOT_POINTS =
  SELECT 4 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId NOT IN selected
  UNION
  SELECT 4 AS radius, 'red' AS stroke, 'red' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y,
         productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId IN selected;

HIST =
  SELECT productId * 8 AS x, 280 - price AS y, 6 AS width, price AS height,
         CASE WHEN productId IN selected THEN 'red' ELSE 'blue' END AS fill,
         productId
  FROM Sales;

P  = render(SELECT * FROM SPLOT_POINTS);
P2 = render(SELECT x, y, width, height, fill FROM HIST, 'rect');
`)
	return b.String()
}

// BuildTraceProgram generates the DeVIL 4 variant: the same linked brushing
// expressed with a BACKWARD TRACE and the {Sales∖B, B} partition, with no
// productId annotations in the marks.
func BuildTraceProgram(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("CREATE TABLE Sales (productId int, price float, profit float, revenue float, productName string);\n")
	b.WriteString("INSERT INTO Sales VALUES\n")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  (%d, %.2f, %.2f, %.2f, 'p%d')",
			i, 20+rng.Float64()*80, rng.Float64()*100, rng.Float64()*100, i)
	}
	b.WriteString(";\n")
	b.WriteString(`
CREATE TABLE scale_x (lo float, hi float);
INSERT INTO scale_x VALUES (0, 100);
CREATE TABLE scale_y (lo float, hi float);
INSERT INTO scale_y VALUES (0, 100);

SPLOT_POINTS =
  SELECT 4 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(Sales.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(Sales.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM Sales, scale_x AS sx, scale_y AS sy;

C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

B = BACKWARD TRACE
    FROM SPLOT_POINTS@vnow-1 AS SP, C
    WHERE in_rectangle(SP.center_x, SP.center_y,
          (SELECT min(x) FROM C), (SELECT min(y) FROM C),
          (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C))
    TO Sales;

▷ SPLOT_POINTS without productId
SPLOT_POINTS =
  SELECT 4 AS radius, 'red' AS stroke, 'red' AS fill,
         linear_scale(B.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(B.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM B, scale_x AS sx, scale_y AS sy
  UNION
  SELECT 4 AS radius, 'gray' AS stroke, 'gray' AS fill,
         linear_scale(rest.revenue, sx.lo, sx.hi, 20, 380) AS center_x,
         linear_scale(rest.profit, sy.lo, sy.hi, 280, 20) AS center_y
  FROM (Sales MINUS B) AS rest, scale_x AS sx, scale_y AS sy;

P = render(SELECT * FROM SPLOT_POINTS);
`)
	return b.String()
}

// BrushDrag returns a drag selecting the rectangle (x0,y0)-(x1,y1) in
// screen space.
func BrushDrag(t0, x0, y0, x1, y1 int64) events.Stream {
	return events.Drag(t0, x0, y0, x1, y1, 4)
}

// NewBrushingEngine loads the DeVIL 1-3 program; NewTraceEngine the DeVIL 4
// variant.
func NewBrushingEngine(n int, seed int64, cfg core.Config) (*core.Engine, error) {
	e := core.New(cfg)
	if err := e.LoadProgram(BuildBrushingProgram(n, seed)); err != nil {
		return nil, err
	}
	return e, nil
}

// NewTraceEngine loads the DeVIL 4 provenance-based program.
func NewTraceEngine(n int, seed int64, cfg core.Config) (*core.Engine, error) {
	e := core.New(cfg)
	if err := e.LoadProgram(BuildTraceProgram(n, seed)); err != nil {
		return nil, err
	}
	return e, nil
}
