package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/precision"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Table1 replays the exact event sequence of Table 1 through a full engine
// and prints the compound event table C.
func Table1() (Result, error) {
	e, err := NewBrushingEngine(5, 1, core.Config{})
	if err != nil {
		return Result{}, err
	}
	stream := events.Stream{
		events.Mouse(events.MouseDown, 0, 5, 15),
		events.Mouse(events.MouseMove, 1, 6, 17),
		events.Mouse(events.MouseMove, 40, 10, 10),
		events.Mouse(events.MouseUp, 41, 10, 10),
	}
	var b strings.Builder
	b.WriteString("Table 1 — contents of the event table C during a drag\n\n")
	for _, ev := range stream {
		if _, err := e.FeedEvent(ev); err != nil {
			return Result{}, err
		}
		c, err := e.Relation("C")
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&b, "after %-22s C has %d rows\n", ev.String(), c.Len())
	}
	c, err := e.Relation("C")
	if err != nil {
		return Result{}, err
	}
	b.WriteString("\n" + c.String())
	b.WriteString("\nMOUSE_UP(41,10,10) terminated the query (transaction committed).\n")
	return Result{ID: "table1", Title: "Compound event table contents", Output: b.String()}, nil
}

// Fig2LinkedBrush regenerates Figure 2: the static scatterplot+histogram,
// the brushing interaction selecting a region, and the rollback.
func Fig2LinkedBrush(n int, seed int64) (Result, error) {
	e, err := NewBrushingEngine(n, seed, core.Config{})
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — linked brushing over %d products\n\n", n)
	countSelected := func() int {
		sel, _ := e.Relation("selected")
		return sel.Len()
	}
	fmt.Fprintf(&b, "step 0 (static): %d selected\n", countSelected())
	if _, err := e.FeedStream(BrushDrag(0, 100, 50, 250, 200)); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "step 1 (drag selects region 100,50-250,200): %d selected\n", countSelected())
	sel, _ := e.Relation("selected")
	b.WriteString(sel.String())
	if err := e.Undo(); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "step 2 (roll back): %d selected\n\n", countSelected())
	b.WriteString("scatterplot + histogram after re-selection:\n")
	if _, err := e.FeedStream(BrushDrag(100, 100, 50, 250, 200)); err != nil {
		return Result{}, err
	}
	b.WriteString(e.Image().ASCII(8, 12))
	return Result{ID: "fig2", Title: "Linked brushing (DeVIL 1-3)", Output: b.String()}, nil
}

// DeVIL4TraceVsJoin compares the provenance-based linked brushing (DeVIL 4)
// against the annotation/join-based version (DeVIL 3) on result equivalence
// and per-interaction latency.
func DeVIL4TraceVsJoin(n int, interactions int, seed int64) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "DeVIL 4 — provenance trace vs productId-annotation join (%d products)\n\n", n)

	run := func(name string, mk func() (*core.Engine, error), readSel func(e *core.Engine) (int, error)) (time.Duration, error) {
		e, err := mk()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for k := 0; k < interactions; k++ {
			if _, err := e.FeedStream(BrushDrag(int64(k*100), 100, 50, 250, 200)); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start)
		nSel, err := readSel(e)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(&b, "%-28s %8.2f ms/interaction   (%d rows selected)\n",
			name, float64(elapsed.Milliseconds())/float64(interactions), nSel)
		return elapsed, nil
	}

	_, err := run("DeVIL 3 (join + IN)", func() (*core.Engine, error) {
		return NewBrushingEngine(n, seed, core.Config{})
	}, func(e *core.Engine) (int, error) {
		sel, err := e.Relation("selected")
		if err != nil {
			return 0, err
		}
		return sel.Len(), nil
	})
	if err != nil {
		return Result{}, err
	}
	_, err = run("DeVIL 4 (backward trace)", func() (*core.Engine, error) {
		return NewTraceEngine(n, seed, core.Config{})
	}, func(e *core.Engine) (int, error) {
		bRel, err := e.Relation("B")
		if err != nil {
			return 0, err
		}
		return bRel.Len(), nil
	})
	if err != nil {
		return Result{}, err
	}
	b.WriteString("\nBoth formulations select the same products; the trace needs no manual\nproductId annotations in the mark relations (§3.1).\n")
	return Result{ID: "deVIL4", Title: "Provenance-based linked brushing", Output: b.String()}, nil
}

// Fig5 regenerates Figure 5: average completion time of the judgment task
// per policy under the no-delay and mean-2.5s conditions.
func Fig5(task cc.Task, participants int, seed int64) Result {
	study := cc.RunStudy(cc.StudyParams{Participants: participants, Task: task, Seed: seed})
	var b strings.Builder
	b.WriteString(study.Format())
	b.WriteString("\nranking at 2.5s delay (fastest first): ")
	for i, p := range study.Ranking(2500) {
		if i > 0 {
			b.WriteString(" < ")
		}
		b.WriteString(p.String())
	}
	b.WriteString("\n")
	return Result{ID: "fig5", Title: "Completion time by policy (§3.2)", Output: b.String()}
}

// Fig6 regenerates the SDSS transformation-graph analysis: template
// coverage, interaction shares, and graph density.
func Fig6(logSize int, seed int64) (Result, error) {
	log := workload.SDSSLog(logSize, seed)
	total, byTemplate := workload.TemplateCoverage(log)
	g, err := precision.BuildGraphFromSessions(SessionsOf(log), precision.SDSSRules())
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — SDSS-style log analysis (%d queries; paper used 125,600)\n\n", logSize)
	fmt.Fprintf(&b, "template coverage: %.2f%% of statements map to %d templates (paper: >99.1%% to 6)\n",
		total*100, len(byTemplate))
	b.WriteString(g.Format())
	return Result{ID: "fig6", Title: "SDSS transformation graph", Output: b.String()}, nil
}

// Fig7 regenerates the generated-interface comparison: the original
// (full SQL) interface vs simplicity- and coverage-preferring syntheses.
func Fig7(logSize int, seed int64) (Result, error) {
	log := workload.SDSSLog(logSize, seed)
	g, err := precision.BuildGraphFromSessions(SessionsOf(log), precision.SDSSRules())
	if err != nil {
		return Result{}, err
	}
	original := precision.Interface{
		Widgets:  []precision.WidgetSpec{precision.DefaultCatalog()[6]}, // sql-textbox
		TotalVis: 5,
	}
	// Evaluate the original under the same objective for comparison.
	origEval := precision.Synthesize(g, precision.SynthesisParams{
		Catalog: original.Widgets, MaxVis: 6, Penalty: 10,
	})
	simple := precision.Synthesize(g, precision.SynthesisParams{MaxVis: 6, Penalty: 10})
	coverage := precision.Synthesize(g, precision.SynthesisParams{MaxVis: 20, Penalty: 10})
	var b strings.Builder
	b.WriteString("Figure 7 — original vs generated interfaces\n\n")
	b.WriteString("(a) original SDSS interface (free-form SQL):\n")
	b.WriteString(origEval.Mockup("SkyServer — original"))
	b.WriteString("\n(b) generated, prefers simplicity (max_vis=6):\n")
	b.WriteString(simple.Mockup("SkyServer — simple"))
	b.WriteString("\n(c) generated, prefers coverage (max_vis=20):\n")
	b.WriteString(coverage.Mockup("SkyServer — coverage"))
	return Result{ID: "fig7", Title: "Precision interface synthesis", Output: b.String()}, nil
}

// SessionsOf groups a log into per-session query sequences.
func SessionsOf(log []workload.LogEntry) [][]string {
	var sessions [][]string
	cur := -1
	for _, e := range log {
		if e.Session != cur {
			sessions = append(sessions, nil)
			cur = e.Session
		}
		sessions[len(sessions)-1] = append(sessions[len(sessions)-1], e.SQL)
	}
	return sessions
}

// StreamExperiment regenerates the §3.3 numbers: intent-model accuracy at
// the 200 ms horizon and the scheduler comparison (A3 ablation).
func StreamExperiment(traces int, seed int64) (Result, error) {
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	m := stream.NewIntentModel(widgets)
	eval := workload.MouseTraces(traces, widgets, 20, 10, seed)
	acc := m.Evaluate(eval)

	tiles, err := stream.SyntheticTiles(len(widgets), 32, seed)
	if err != nil {
		return Result{}, err
	}
	sessionTraces := workload.MouseTraces(80, widgets, 20, 10, seed+1)
	var results []stream.SessionResult
	for _, s := range []stream.Scheduler{&stream.GreedyUtility{}, stream.RoundRobin{}, stream.NoPrefetch{}} {
		res, err := stream.RunSession(stream.SessionParams{
			Widgets: widgets, Tiles: tiles, Traces: sessionTraces, Sched: s,
			BandwidthPerTick: 8, RenderableUtility: 0.99,
		})
		if err != nil {
			return Result{}, err
		}
		results = append(results, res)
	}
	var b strings.Builder
	b.WriteString("§3.3 — near-interactive streaming\n\n")
	fmt.Fprintf(&b, "intent model: %.1f%% top-1 accuracy at 200 ms horizon over %d traces (paper: 82%%)\n\n",
		acc*100, traces)
	b.WriteString("scheduler comparison (50 ms rescheduling, bandwidth 8 coeffs/tick, renderable at 0.99 energy):\n")
	b.WriteString(stream.FormatResults(results))
	return Result{ID: "stream", Title: "Near-interactive streaming (§3.3)", Output: b.String()}, nil
}

// AblationIncremental compares delta-driven view maintenance against full
// recomputation on the crossfilter workload (A1). The incremental arm
// reports how the work split across the maintenance paths: delta applies,
// full fallbacks (subquery-bearing views), empty-delta skips, and render
// skips.
func AblationIncremental(n int, seed int64) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "A1 — incremental vs full view recomputation (%d order lines)\n\n", n)
	stats := map[string]int64{}
	for _, full := range []bool{false, true} {
		e := core.New(core.Config{RecomputeAll: full})
		if err := e.LoadProgram(BuildCrossfilterProgram(n, seed)); err != nil {
			return Result{}, err
		}
		e.Stats = core.Stats{}
		start := time.Now()
		const rounds = 5
		for k := 0; k < rounds; k++ {
			if _, err := e.FeedStream(YearSelectionDrag()); err != nil {
				return Result{}, err
			}
		}
		elapsed := time.Since(start)
		mode := "incremental (delta)"
		armKey := "incremental"
		if full {
			mode = "full recompute"
			armKey = "full"
		}
		fmt.Fprintf(&b, "%-26s %8.2f ms/interaction, %4d view recomputes\n",
			mode, float64(elapsed.Milliseconds())/rounds, e.Stats.ViewRecomputes)
		if !full {
			fmt.Fprintf(&b, "%-26s %d delta applies (%d rows in, %d out), %d fallbacks, %d empty-delta skips, %d render skips\n",
				"", e.Stats.ViewDeltaApplies, e.Stats.DeltaRowsIn, e.Stats.DeltaRowsOut,
				e.Stats.FullFallbacks, e.Stats.EmptyDeltaSkips, e.Stats.RenderSkips)
			stats["delta_applies"] = int64(e.Stats.ViewDeltaApplies)
			stats["full_fallbacks"] = int64(e.Stats.FullFallbacks)
			stats["empty_delta_skips"] = int64(e.Stats.EmptyDeltaSkips)
			stats["render_skips"] = int64(e.Stats.RenderSkips)
		}
		stats[armKey+"_view_recomputes"] = int64(e.Stats.ViewRecomputes)
		stats[armKey+"_us_per_interaction"] = elapsed.Microseconds() / rounds
	}
	return Result{ID: "ablation-incremental", Title: "View maintenance ablation", Output: b.String(), Stats: stats}, nil
}

// AblationProvenance compares lazy vs eager lineage maintenance on the
// DeVIL 4 workload (A2): eager pays on every recompute, lazy only at trace
// time — the paper's argument for not materializing lineage that feeds
// filters and aggregates.
func AblationProvenance(n int, seed int64) (Result, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "A2 — lazy vs eager provenance (%d products)\n\n", n)
	for _, eager := range []bool{false, true} {
		e, err := NewTraceEngine(n, seed, core.Config{EagerProvenance: eager})
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		const rounds = 5
		for k := 0; k < rounds; k++ {
			if _, err := e.FeedStream(BrushDrag(int64(k*100), 100, 50, 250, 200)); err != nil {
				return Result{}, err
			}
		}
		elapsed := time.Since(start)
		mode := "lazy (trace-time lineage)"
		if eager {
			mode = "eager (materialized index)"
		}
		fmt.Fprintf(&b, "%-28s %8.2f ms/interaction\n",
			mode, float64(elapsed.Milliseconds())/rounds)
	}
	return Result{ID: "ablation-provenance", Title: "Provenance strategy ablation", Output: b.String()}, nil
}

// EndToEnd measures event→pixels latency of the brushing program as data
// grows (E10).
func EndToEnd(sizes []int, seed int64) (Result, error) {
	var b strings.Builder
	b.WriteString("E10 — end-to-end interaction latency (event -> marks -> pixels)\n\n")
	for _, n := range sizes {
		e, err := NewBrushingEngine(n, seed, core.Config{})
		if err != nil {
			return Result{}, err
		}
		drag := BrushDrag(0, 100, 50, 250, 200)
		start := time.Now()
		if _, err := e.FeedStream(drag); err != nil {
			return Result{}, err
		}
		perEvent := time.Since(start) / time.Duration(len(drag))
		fmt.Fprintf(&b, "%6d products: %8.3f ms/event\n", n, float64(perEvent.Microseconds())/1000)
	}
	return Result{ID: "e2e", Title: "End-to-end interaction latency", Output: b.String()}, nil
}

// All runs every experiment with default parameters, in the DESIGN.md index
// order.
func All() ([]Result, error) {
	var out []Result
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	if err := add(Fig1Crossfilter(2000, 7)); err != nil {
		return nil, err
	}
	if err := add(Fig2LinkedBrush(100, 7)); err != nil {
		return nil, err
	}
	if err := add(Table1()); err != nil {
		return nil, err
	}
	if err := add(DeVIL4TraceVsJoin(200, 5, 7)); err != nil {
		return nil, err
	}
	r5 := Fig5(cc.Threshold, 40, 7)
	out = append(out, r5)
	r5h := Fig5(cc.Trend, 40, 7)
	r5h.ID = "fig5-trend"
	out = append(out, r5h)
	if err := add(Fig6(20000, 7)); err != nil {
		return nil, err
	}
	if err := add(Fig7(8000, 7)); err != nil {
		return nil, err
	}
	if err := add(StreamExperiment(600, 7)); err != nil {
		return nil, err
	}
	if err := add(AblationIncremental(1000, 7)); err != nil {
		return nil, err
	}
	if err := add(AblationProvenance(150, 7)); err != nil {
		return nil, err
	}
	if err := add(EndToEnd([]int{50, 200, 800}, 7)); err != nil {
		return nil, err
	}
	if err := add(IVMScaling([]int{2000}, 6, 7)); err != nil {
		return nil, err
	}
	if err := add(VersioningExperiment([]int{2000}, 20, 7)); err != nil {
		return nil, err
	}
	if err := add(ServeFanout(2000, 4, 6, 7)); err != nil {
		return nil, err
	}
	return out, nil
}
