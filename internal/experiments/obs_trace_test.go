package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestForcedSlowCubeTrace is the ISSUE 10 acceptance check: force every
// event over the budget (1ns) on the cube crossfilter workload and verify
// the slow log's traces name the path the engine actually took — the
// cube-tile path for steady brush moves — with per-stage durations that
// account for the event latency.
func TestForcedSlowCubeTrace(t *testing.T) {
	e, err := NewCubeEngine(2000, 7, core.Config{LatencyBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	// First drag builds the tiles; the second brushes them in steady state.
	if _, err := e.FeedStream(CubeDragStream(2)); err != nil {
		t.Fatal(err)
	}
	slow := e.Obs().SlowEvents()
	if len(slow) == 0 {
		t.Fatal("1ns budget recorded no slow events")
	}
	var cubeSpans int
	for _, tr := range slow {
		var spanSum float64
		for _, sp := range tr.Spans {
			spanSum += sp.DurUS
			if sp.Stage == obs.StageDelta && sp.Path == obs.PathCube {
				cubeSpans++
				if sp.View == "" {
					t.Fatalf("cube delta span missing view: %+v", sp)
				}
			}
		}
		// The sort span nests inside its view's delta span (the one known
		// double count), so the span sum stays within ~2x of the total.
		if tr.TotalUS <= 0 || spanSum > 2*tr.TotalUS {
			t.Fatalf("span sum %v µs vs total %v µs: %+v", spanSum, tr.TotalUS, tr)
		}
	}
	if cubeSpans == 0 {
		t.Fatalf("steady cube brushing produced no cube-path spans in %d slow traces", len(slow))
	}
	// The histogram agrees with the traces about the path taken.
	if c := e.Obs().Snapshot().Histograms["dvms_stage_delta_cube_seconds"]; c.Count == 0 {
		t.Fatal("cube-path stage histogram empty despite cube-path spans")
	}
}
