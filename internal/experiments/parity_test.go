package experiments

// Delta-vs-full parity: the property test of ISSUE 2. Randomized event
// streams replay through two engines — the default incremental one and a
// RecomputeAll oracle — and after every event the full database state must
// agree: every relation (bag equality), the committed version count, and
// the rendered pixels. The three programs cover the three maintenance
// regimes: the stock crossfilter (subquery-heavy: full fallback + diffs),
// the stock linked brush (IN/@vnow-1: fallback, abort/rollback paths), and
// the join-based IVM crossfilter (true delta propagation through join,
// aggregate, set-op, and sink pipelines, plus base-table writes).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
)

// randomDrags builds a stream of nDrags randomized drags with stray events
// (hovers, filtered moves) between them. Low-y moves exercise recognizer
// predicates (the brushing program aborts drags dipping to y ≤ 5).
func randomDrags(rng *rand.Rand, nDrags int) events.Stream {
	var s events.Stream
	t := int64(0)
	for k := 0; k < nDrags; k++ {
		x0, y0 := int64(rng.Intn(400)), int64(10+rng.Intn(280))
		s = append(s, events.Mouse(events.MouseDown, t, x0, y0))
		t++
		moves := 1 + rng.Intn(5)
		x, y := x0, y0
		for m := 0; m < moves; m++ {
			x += int64(rng.Intn(161) - 60)
			y += int64(rng.Intn(81) - 40)
			if rng.Intn(8) == 0 {
				y = int64(rng.Intn(6)) // dip low: may abort the interaction
			}
			s = append(s, events.Mouse(events.MouseMove, t, x, y))
			t++
		}
		s = append(s, events.Mouse(events.MouseUp, t, x, y))
		t++
		// Stray events that recognizers filter.
		if rng.Intn(2) == 0 {
			s = append(s, events.Mouse(events.Hover, t, 10, 10))
			t++
		}
		if rng.Intn(3) == 0 {
			s = append(s, events.Mouse(events.MouseMove, t, 200, 200))
			t++
		}
	}
	return s
}

func assertEngineParity(t *testing.T, step string, inc, full *core.Engine) {
	t.Helper()
	if iv, fv := inc.Store().Versions(), full.Store().Versions(); iv != fv {
		t.Fatalf("%s: version count diverges: incremental %d vs full %d", step, iv, fv)
	}
	for _, name := range full.Store().Names() {
		fr, err := full.Relation(name)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		ir, err := inc.Relation(name)
		if err != nil {
			t.Fatalf("%s: relation %s missing from incremental engine: %v", step, name, err)
		}
		if !relation.Equal(ir, fr) {
			is, fs := ir.Clone(), fr.Clone()
			is.SortDeterministic()
			fs.SortDeterministic()
			t.Fatalf("%s: relation %s diverges\nincremental:\n%s\nfull:\n%s", step, name, is, fs)
		}
	}
	ii, fi := inc.Image(), full.Image()
	if ii.W != fi.W || ii.H != fi.H {
		t.Fatalf("%s: image dims diverge", step)
	}
	for p := range fi.Pix {
		if ii.Pix[p] != fi.Pix[p] {
			t.Fatalf("%s: pixel %d,%d diverges: incremental %+v vs full %+v",
				step, p%fi.W, p/fi.W, ii.Pix[p], fi.Pix[p])
		}
	}
}

func TestDeltaVsFullParity(t *testing.T) {
	cases := []struct {
		name string
		mk   func(cfg core.Config) (*core.Engine, error)
		// mutate optionally applies a mid-stream base-table write.
		mutate func(e *core.Engine, round int) error
	}{
		{
			name: "crossfilter",
			mk: func(cfg core.Config) (*core.Engine, error) {
				e := core.New(cfg)
				if err := e.LoadProgram(BuildCrossfilterProgram(120, 3)); err != nil {
					return nil, err
				}
				return e, nil
			},
		},
		{
			name: "linkedbrush",
			mk: func(cfg core.Config) (*core.Engine, error) {
				return NewBrushingEngine(60, 3, cfg)
			},
		},
		{
			name: "ivm-join-crossfilter",
			mk: func(cfg core.Config) (*core.Engine, error) {
				return NewIVMEngine(150, 3, cfg)
			},
			mutate: func(e *core.Engine, round int) error {
				if round%2 == 0 {
					return e.Exec(fmt.Sprintf(
						"INSERT INTO Sales VALUES (%d, 'EUROPE', 'BUILDING', 1996, %d, 3, 500)",
						9000+round, 1+round%12))
				}
				return e.Exec(fmt.Sprintf("DELETE FROM Sales WHERE month = %d AND revenue < 300", 1+round%12))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc, err := tc.mk(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := tc.mk(core.Config{RecomputeAll: true})
			if err != nil {
				t.Fatal(err)
			}
			assertEngineParity(t, "after load", inc, full)
			rng := rand.New(rand.NewSource(11))
			stream := randomDrags(rng, 6)
			round, commits := 0, 0
			for i, ev := range stream {
				ti, err1 := inc.FeedEvent(ev)
				tf, err2 := full.FeedEvent(ev)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("event %d: error divergence: %v vs %v", i, err1, err2)
				}
				if err1 != nil {
					t.Fatalf("event %d: %v", i, err1)
				}
				if ti != tf {
					t.Fatalf("event %d: txn summaries diverge: %+v vs %+v", i, ti, tf)
				}
				assertEngineParity(t, fmt.Sprintf("after event %d (%s)", i, ev.Type), inc, full)
				// Between interactions, interleave base-table writes and the
				// occasional undo so state restoration paths are covered.
				if tc.mutate != nil && ti.Committed {
					round++
					if err := tc.mutate(inc, round); err != nil {
						t.Fatal(err)
					}
					if err := tc.mutate(full, round); err != nil {
						t.Fatal(err)
					}
					assertEngineParity(t, fmt.Sprintf("after mutation %d", round), inc, full)
				}
				if ti.Committed {
					commits++
					if commits == 3 {
						if err := inc.Undo(); err != nil {
							t.Fatal(err)
						}
						if err := full.Undo(); err != nil {
							t.Fatal(err)
						}
						assertEngineParity(t, "after undo", inc, full)
					}
				}
			}
			if inc.Stats.EventsFed == 0 {
				t.Fatal("no events fed")
			}
		})
	}
}

// TestIVMDeltaPathActuallyUsed guards against the parity suite silently
// passing because everything fell back: the IVM program must serve brush
// events through delta application.
func TestIVMDeltaPathActuallyUsed(t *testing.T) {
	e, err := NewIVMEngine(200, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Stats = core.Stats{}
	if _, err := e.FeedStream(IVMBrushStream(4)); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies == 0 {
		t.Fatal("brush events should flow through the delta path")
	}
	if e.Stats.ViewDeltaApplies < e.Stats.FullFallbacks {
		t.Fatalf("delta applies (%d) should dominate fallbacks (%d)",
			e.Stats.ViewDeltaApplies, e.Stats.FullFallbacks)
	}
}
