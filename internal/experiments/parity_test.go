package experiments

// Delta-vs-full parity: the property test of ISSUE 2. Randomized event
// streams replay through two engines — the default incremental one and a
// RecomputeAll oracle — and after every event the full database state must
// agree: every relation (bag equality), the committed version count, and
// the rendered pixels. The three programs cover the three maintenance
// regimes: the stock crossfilter (subquery-heavy: full fallback + diffs),
// the stock linked brush (IN/@vnow-1: fallback, abort/rollback paths), and
// the join-based IVM crossfilter (true delta propagation through join,
// aggregate, set-op, and sink pipelines, plus base-table writes).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/relation"
)

// randomDrags builds a stream of nDrags randomized drags with stray events
// (hovers, filtered moves) between them. Low-y moves exercise recognizer
// predicates (the brushing program aborts drags dipping to y ≤ 5).
func randomDrags(rng *rand.Rand, nDrags int) events.Stream {
	var s events.Stream
	t := int64(0)
	for k := 0; k < nDrags; k++ {
		x0, y0 := int64(rng.Intn(400)), int64(10+rng.Intn(280))
		s = append(s, events.Mouse(events.MouseDown, t, x0, y0))
		t++
		moves := 1 + rng.Intn(5)
		x, y := x0, y0
		for m := 0; m < moves; m++ {
			x += int64(rng.Intn(161) - 60)
			y += int64(rng.Intn(81) - 40)
			if rng.Intn(8) == 0 {
				y = int64(rng.Intn(6)) // dip low: may abort the interaction
			}
			s = append(s, events.Mouse(events.MouseMove, t, x, y))
			t++
		}
		s = append(s, events.Mouse(events.MouseUp, t, x, y))
		t++
		// Stray events that recognizers filter.
		if rng.Intn(2) == 0 {
			s = append(s, events.Mouse(events.Hover, t, 10, 10))
			t++
		}
		if rng.Intn(3) == 0 {
			s = append(s, events.Mouse(events.MouseMove, t, 200, 200))
			t++
		}
	}
	return s
}

func assertEngineParity(t *testing.T, step string, inc, full *core.Engine) {
	t.Helper()
	if iv, fv := inc.Store().Versions(), full.Store().Versions(); iv != fv {
		t.Fatalf("%s: version count diverges: incremental %d vs full %d", step, iv, fv)
	}
	for _, name := range full.Store().Names() {
		fr, err := full.Relation(name)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		ir, err := inc.Relation(name)
		if err != nil {
			t.Fatalf("%s: relation %s missing from incremental engine: %v", step, name, err)
		}
		if !relation.Equal(ir, fr) {
			is, fs := ir.Clone(), fr.Clone()
			is.SortDeterministic()
			fs.SortDeterministic()
			t.Fatalf("%s: relation %s diverges\nincremental:\n%s\nfull:\n%s", step, name, is, fs)
		}
	}
	ii, fi := inc.Image(), full.Image()
	if ii.W != fi.W || ii.H != fi.H {
		t.Fatalf("%s: image dims diverge", step)
	}
	for p := range fi.Pix {
		if ii.Pix[p] != fi.Pix[p] {
			t.Fatalf("%s: pixel %d,%d diverges: incremental %+v vs full %+v",
				step, p%fi.W, p/fi.W, ii.Pix[p], fi.Pix[p])
		}
	}
}

// assertOrderedViews compares the named views' materialized rows in exact
// order: ordered (ORDER BY / LIMIT) views carry meaning in their row order,
// so bag equality is not enough for them. cmp is the ground-truth total
// order of the views' ORDER BY clause: both engines read the same store
// reconstruction after an undo, so agreeing with each other is not enough —
// the rows must actually *be* sorted.
func assertOrderedViews(t *testing.T, step string, inc, full *core.Engine, names []string, cmp func(a, b relation.Tuple) int) {
	t.Helper()
	for _, name := range names {
		ir, err := inc.Relation(name)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		fr, err := full.Relation(name)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if len(ir.Rows) != len(fr.Rows) {
			t.Fatalf("%s: ordered view %s: %d rows vs %d", step, name, len(ir.Rows), len(fr.Rows))
		}
		for i := range ir.Rows {
			if !ir.Rows[i].Equal(fr.Rows[i]) {
				t.Fatalf("%s: ordered view %s diverges at row %d: incremental %v vs full %v\nincremental:\n%s\nfull:\n%s",
					step, name, i, ir.Rows[i], fr.Rows[i], ir, fr)
			}
			if cmp != nil && i > 0 && cmp(ir.Rows[i-1], ir.Rows[i]) > 0 {
				t.Fatalf("%s: ordered view %s is not sorted at row %d: %v after %v\n%s",
					step, name, i, ir.Rows[i], ir.Rows[i-1], ir)
			}
		}
	}
}

// topKOrder is the ground-truth order of the top-k program's leaderboards:
// rev DESC, oid ASC (schema: oid, rev).
func topKOrder(a, b relation.Tuple) int {
	if c := b[1].Compare(a[1]); c != 0 {
		return c
	}
	return a[0].Compare(b[0])
}

func TestDeltaVsFullParity(t *testing.T) {
	cases := []struct {
		name string
		mk   func(cfg core.Config) (*core.Engine, error)
		// mutate optionally applies a mid-stream base-table write.
		mutate func(e *core.Engine, round int) error
		// ordered lists views whose row order must also match; orderedCmp is
		// their ORDER BY clause as a ground-truth comparator.
		ordered    []string
		orderedCmp func(a, b relation.Tuple) int
	}{
		{
			name: "crossfilter",
			mk: func(cfg core.Config) (*core.Engine, error) {
				e := core.New(cfg)
				if err := e.LoadProgram(BuildCrossfilterProgram(120, 3)); err != nil {
					return nil, err
				}
				return e, nil
			},
		},
		{
			name: "linkedbrush",
			mk: func(cfg core.Config) (*core.Engine, error) {
				return NewBrushingEngine(60, 3, cfg)
			},
		},
		{
			name: "ivm-join-crossfilter",
			mk: func(cfg core.Config) (*core.Engine, error) {
				return NewIVMEngine(150, 3, cfg)
			},
			mutate: func(e *core.Engine, round int) error {
				if round%2 == 0 {
					return e.Exec(fmt.Sprintf(
						"INSERT INTO Sales VALUES (%d, 'EUROPE', 'BUILDING', 1996, %d, 3, 500)",
						9000+round, 1+round%12))
				}
				return e.Exec(fmt.Sprintf("DELETE FROM Sales WHERE month = %d AND revenue < 300", 1+round%12))
			},
		},
		{
			name: "topk-crossfilter",
			mk: func(cfg core.Config) (*core.Engine, error) {
				// 140 rows: brushed months often hold fewer than k rows, so
				// the maintained prefixes cross k > |rows| repeatedly.
				return NewTopKEngine(140, 3, cfg)
			},
			mutate: func(e *core.Engine, round int) error {
				switch round % 3 {
				case 0:
					// Lands at rank 1 of both leaderboards: evicts the k-th.
					return e.Exec(fmt.Sprintf(
						"INSERT INTO Sales VALUES (%d, 'EUROPE', 'BUILDING', 1997, %d, 3, %d)",
						9000+round, 1+round%12, 50000+round))
				case 1:
					// Deletes exactly the boundary-crossing rows inserted
					// above: successors promote back into the prefix.
					return e.Exec("DELETE FROM Sales WHERE revenue >= 50000")
				default:
					return e.Exec(fmt.Sprintf("DELETE FROM Sales WHERE month = %d AND revenue < 500", 1+round%12))
				}
			},
			ordered:    []string{"TOPALL", "TOPSEL"},
			orderedCmp: topKOrder,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc, err := tc.mk(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			full, err := tc.mk(core.Config{RecomputeAll: true})
			if err != nil {
				t.Fatal(err)
			}
			checkParity := func(step string) {
				assertEngineParity(t, step, inc, full)
				assertOrderedViews(t, step, inc, full, tc.ordered, tc.orderedCmp)
			}
			checkParity("after load")
			rng := rand.New(rand.NewSource(11))
			stream := randomDrags(rng, 6)
			round, commits := 0, 0
			for i, ev := range stream {
				ti, err1 := inc.FeedEvent(ev)
				tf, err2 := full.FeedEvent(ev)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("event %d: error divergence: %v vs %v", i, err1, err2)
				}
				if err1 != nil {
					t.Fatalf("event %d: %v", i, err1)
				}
				if ti != tf {
					t.Fatalf("event %d: txn summaries diverge: %+v vs %+v", i, ti, tf)
				}
				checkParity(fmt.Sprintf("after event %d (%s)", i, ev.Type))
				// Between interactions, interleave base-table writes and the
				// occasional undo so state restoration paths are covered.
				if tc.mutate != nil && ti.Committed {
					round++
					if err := tc.mutate(inc, round); err != nil {
						t.Fatal(err)
					}
					if err := tc.mutate(full, round); err != nil {
						t.Fatal(err)
					}
					checkParity(fmt.Sprintf("after mutation %d", round))
				}
				if ti.Committed {
					commits++
					if commits == 3 {
						if err := inc.Undo(); err != nil {
							t.Fatal(err)
						}
						if err := full.Undo(); err != nil {
							t.Fatal(err)
						}
						checkParity("after undo")
					}
				}
			}
			if inc.Stats.EventsFed == 0 {
				t.Fatal("no events fed")
			}
		})
	}
}

// TestUndoRestoresOrderedViewOrder: rollback/undo rewrite live contents
// through the store's bag-level delta log, which restores the exact bag but
// not row order. For ORDER BY views the order is part of the contract, so
// the engine must re-sort them after any store-level restore — this used to
// leave the restored rank row parked at the end of the leaderboard.
func TestUndoRestoresOrderedViewOrder(t *testing.T) {
	e, err := NewTopKEngine(200, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Several committed deletes of the current rank-3 row push the restore
	// target past the initial checkpoint, so Undo reconstructs through
	// inverted deltas (re-inserting each deleted row).
	for i := 0; i < 6; i++ {
		top, err := e.Relation("TOPALL")
		if err != nil {
			t.Fatal(err)
		}
		oid, _ := top.Rows[2][0].AsInt()
		if err := e.Exec(fmt.Sprintf("DELETE FROM Sales WHERE orderId = %d", oid)); err != nil {
			t.Fatal(err)
		}
		e.Commit()
	}
	if err := e.Undo(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"TOPALL", "TOPSEL"} {
		rel, err := e.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rel.Rows); i++ {
			if topKOrder(rel.Rows[i-1], rel.Rows[i]) > 0 {
				t.Fatalf("%s not sorted after undo: %v after %v\n%s", name, rel.Rows[i], rel.Rows[i-1], rel)
			}
		}
	}
	// Versioned reads of ordered views re-sort the reconstructed bag too.
	past, err := e.RelationAt("TOPALL", relation.VersionRef{Kind: relation.VersionVNow, Offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(past.Rows); i++ {
		if topKOrder(past.Rows[i-1], past.Rows[i]) > 0 {
			t.Fatalf("TOPALL@vnow-3 not sorted: %v after %v\n%s", past.Rows[i], past.Rows[i-1], past)
		}
	}
}

// TestTopKDeltaPathActuallyUsed guards against the ordered-parity case
// silently passing because every ORDER BY/LIMIT view fell back: brush and
// single-row events must flow through the order-statistic pipelines, and a
// boundary-crossing insert must evict the displaced k-th row.
func TestTopKDeltaPathActuallyUsed(t *testing.T) {
	e, err := NewTopKEngine(300, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Stats = core.Stats{}
	if _, err := e.FeedStream(IVMBrushStream(4)); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies == 0 {
		t.Fatal("brush events should flow through the delta path")
	}
	if e.Stats.TopK.TreeRows == 0 {
		t.Fatal("order-statistic trees should hold rows after brushing")
	}
	before := e.Stats.TopK
	// Rank-1 insert: must enter both leaderboards and evict their k-th rows
	// as a ~2-row prefix delta, not a recompute.
	fallbacks := e.Stats.FullFallbacks
	if err := e.InsertRows("Sales", []relation.Tuple{TopKTickRow(300, 1)}); err != nil {
		t.Fatal(err)
	}
	if e.Stats.TopK.Evictions <= before.Evictions {
		t.Fatal("a rank-1 insert should evict the displaced k-th row")
	}
	if e.Stats.TopK.PrefixEmits <= before.PrefixEmits {
		t.Fatal("a rank-1 insert should emit a prefix delta")
	}
	// The ordered views themselves must not have fallen back for this event
	// (selected_months always does, by design — it is subquery-driven —
	// but a single-row Sales insert leaves it untouched).
	if e.Stats.FullFallbacks != fallbacks {
		t.Fatalf("single-row insert caused %d full fallbacks", e.Stats.FullFallbacks-fallbacks)
	}
	top, err := e.Relation("TOPALL")
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows) != TopKK {
		t.Fatalf("TOPALL has %d rows, want %d", len(top.Rows), TopKK)
	}
	if rev, _ := top.Rows[0][1].AsInt(); rev < 100000 {
		t.Fatalf("inserted rank-1 row missing from the maintained prefix head: %v", top.Rows[0])
	}
}

// TestIVMDeltaPathActuallyUsed guards against the parity suite silently
// passing because everything fell back: the IVM program must serve brush
// events through delta application.
func TestIVMDeltaPathActuallyUsed(t *testing.T) {
	e, err := NewIVMEngine(200, 3, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Stats = core.Stats{}
	if _, err := e.FeedStream(IVMBrushStream(4)); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ViewDeltaApplies == 0 {
		t.Fatal("brush events should flow through the delta path")
	}
	if e.Stats.ViewDeltaApplies < e.Stats.FullFallbacks {
		t.Fatalf("delta applies (%d) should dominate fallbacks (%d)",
			e.Stats.ViewDeltaApplies, e.Stats.FullFallbacks)
	}
}
