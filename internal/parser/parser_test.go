package parser

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/relation"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("expected 1 statement, got %d", len(stmts))
	}
	return stmts[0]
}

func TestParseCreateTable(t *testing.T) {
	s := parseOne(t, "CREATE TABLE Sales (productId int, price float, profit float, revenue float, productName string)")
	ct, ok := s.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "Sales" || ct.Schema.Len() != 5 {
		t.Fatalf("table = %s %s", ct.Name, ct.Schema)
	}
	if ct.Schema.Cols[1].Kind != relation.KindFloat {
		t.Fatal("price should be float")
	}
}

func TestParseInsertValues(t *testing.T) {
	s := parseOne(t, "INSERT INTO Sales VALUES (1, 9.99, 2.5, 100, 'widget'), (2, 19.99, 5.0, 200, 'gadget')")
	ins := s.(*InsertStmt)
	if ins.Table != "Sales" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("insert = %+v", ins)
	}
}

func TestParseInsertSelect(t *testing.T) {
	s := parseOne(t, "INSERT INTO Archive SELECT * FROM Sales WHERE revenue > 100")
	ins := s.(*InsertStmt)
	if ins.Query == nil {
		t.Fatal("expected INSERT ... SELECT")
	}
}

// DeVIL 1 from the paper: the static scatterplot view. linear_scale here
// takes explicit domain/range bounds (see DESIGN.md substitutions).
func TestParseDeVIL1(t *testing.T) {
	src := `
SPLOT_POINTS =
  SELECT
    8 AS radius,
    'gray' AS stroke,
    'gray' AS fill,
    linear_scale(Sales.revenue, sx.lo, sx.hi, 0, 400) AS center_x,
    linear_scale(Sales.profit, sy.lo, sy.hi, 0, 300) AS center_y,
    productId
  FROM Sales, scale_x AS sx, scale_y AS sy;
P = render(SELECT * FROM SPLOT_POINTS);`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("got %d statements", len(stmts))
	}
	a := stmts[0].(*AssignStmt)
	if a.Name != "SPLOT_POINTS" {
		t.Fatalf("name = %s", a.Name)
	}
	sel := a.Query.(*SelectStmt)
	if len(sel.Items) != 6 || len(sel.From) != 3 {
		t.Fatalf("items=%d from=%d", len(sel.Items), len(sel.From))
	}
	if sel.Items[3].Alias != "center_x" {
		t.Fatalf("alias = %s", sel.Items[3].Alias)
	}
	if sel.From[1].Alias != "sx" || sel.From[1].Name != "scale_x" {
		t.Fatalf("from[1] = %+v", sel.From[1])
	}
	r := stmts[1].(*AssignStmt)
	if _, ok := r.Query.(*RenderStmt); !ok {
		t.Fatalf("render stmt = %T", r.Query)
	}
}

// DeVIL 2 from the paper: the compound event statement, verbatim.
func TestParseDeVIL2(t *testing.T) {
	src := `
C =
 EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
 WHERE FORALL m IN M m.y > 5
 RETURN
   (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
   (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy)`
	s := parseOne(t, src)
	ev, ok := s.(*EventStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ev.Name != "C" {
		t.Fatalf("name = %s", ev.Name)
	}
	if len(ev.Seq) != 3 {
		t.Fatalf("seq len = %d", len(ev.Seq))
	}
	if ev.Seq[0].Type != "MOUSE_DOWN" || ev.Seq[0].Alias != "D" || ev.Seq[0].Kleene {
		t.Fatalf("seq[0] = %+v", ev.Seq[0])
	}
	if ev.Seq[1].Type != "MOUSE_MOVE" || !ev.Seq[1].Kleene || ev.Seq[1].Alias != "M" {
		t.Fatalf("seq[1] = %+v", ev.Seq[1])
	}
	if len(ev.Filters) != 1 || ev.Filters[0].Quant != QuantForall ||
		ev.Filters[0].Var != "m" || ev.Filters[0].Over != "M" {
		t.Fatalf("filters = %+v", ev.Filters)
	}
	if len(ev.Return) != 2 || len(ev.Return[0]) != 5 || len(ev.Return[1]) != 5 {
		t.Fatalf("return groups = %d", len(ev.Return))
	}
	if ev.Return[1][3].Alias != "dx" {
		t.Fatalf("return[1][3] alias = %s", ev.Return[1][3].Alias)
	}
}

// DeVIL 3 from the paper: selection via join with a versioned relation plus
// the UNION redefinition of the scatterplot.
func TestParseDeVIL3(t *testing.T) {
	src := `
selected = SELECT SP.productId
  FROM C, SPLOT_POINTS@vnow-1 AS SP
  WHERE in_rectangle(SP.center_x, SP.center_y,
        (SELECT min(x + dx) FROM C), (SELECT min(y + dy) FROM C),
        (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C));
SPLOT_POINTS = SELECT productId, 'gray' AS fill
  FROM Sales WHERE productId NOT IN selected
  UNION
  SELECT productId, 'red' AS fill
  FROM Sales WHERE productId IN selected`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*AssignStmt).Query.(*SelectStmt)
	if sel.From[1].Name != "SPLOT_POINTS" || sel.From[1].Alias != "SP" {
		t.Fatalf("from[1] = %+v", sel.From[1])
	}
	v := sel.From[1].Version
	if v.Kind != relation.VersionVNow || v.Offset != 1 {
		t.Fatalf("version = %+v", v)
	}
	union, ok := stmts[1].(*AssignStmt).Query.(*SetOp)
	if !ok || union.Op != SetUnion || union.All {
		t.Fatalf("second stmt = %+v", stmts[1])
	}
	left := union.L.(*SelectStmt)
	in, ok := left.Where.(*expr.In)
	if !ok || !in.Negate {
		t.Fatalf("where = %v", left.Where)
	}
	if rs, ok := in.Source.(*expr.RelationSource); !ok || rs.Name != "selected" {
		t.Fatalf("in source = %+v", in.Source)
	}
}

// DeVIL 4 from the paper: provenance-based linked brushing with BACKWARD
// TRACE and MINUS, including the ▷ comment marker.
func TestParseDeVIL4(t *testing.T) {
	src := `
B = BACKWARD TRACE
  FROM SPLOT_POINTS@vnow-1 AS SP, C
  WHERE in_rectangle(SP.center_x, SP.center_y, 0, 0, 100, 100)
  TO Sales;
▷ SPLOT_POINTS without productId
SPLOT_POINTS = SELECT productId, 'red' AS fill FROM B
  UNION
  SELECT productId, 'gray' AS fill FROM (Sales MINUS B) AS rest`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := stmts[0].(*AssignStmt).Query.(*TraceStmt)
	if !tr.Backward || tr.To != "Sales" || len(tr.From) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.From[0].Version.Kind != relation.VersionVNow {
		t.Fatal("versioned trace input lost")
	}
	union := stmts[1].(*AssignStmt).Query.(*SetOp)
	right := union.R.(*SelectStmt)
	sub, ok := right.From[0].Sub.(*SetOp)
	if !ok || sub.Op != SetMinus {
		t.Fatalf("expected (Sales MINUS B) subquery, got %+v", right.From[0])
	}
}

func TestParseBracedVersionAndTnow(t *testing.T) {
	s := parseOne(t, "x = SELECT * FROM Marks@{vnow-1}")
	sel := s.(*AssignStmt).Query.(*SelectStmt)
	if sel.From[0].Version != relation.VNow(1) {
		t.Fatalf("version = %+v", sel.From[0].Version)
	}
	s2 := parseOne(t, "x = SELECT * FROM C@tnow-2")
	sel2 := s2.(*AssignStmt).Query.(*SelectStmt)
	if sel2.From[0].Version != relation.TNow(2) {
		t.Fatalf("version = %+v", sel2.From[0].Version)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	s := parseOne(t, `x = SELECT region, sum(revenue) AS total FROM Sales
		WHERE year >= 1997 GROUP BY region HAVING sum(revenue) > 10
		ORDER BY total DESC, region LIMIT 5`)
	sel := s.(*AssignStmt).Query.(*SelectStmt)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("groupby/having missing: %+v", sel)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Fatalf("limit = %d", sel.Limit)
	}
	if !expr.HasAggregate(sel.Items[1].Expr) {
		t.Fatal("sum aggregate not detected")
	}
}

func TestParseCaseAndBetween(t *testing.T) {
	s := parseOne(t, `x = SELECT CASE WHEN v BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END AS bucket FROM T`)
	sel := s.(*AssignStmt).Query.(*SelectStmt)
	if _, ok := sel.Items[0].Expr.(*expr.Case); !ok {
		t.Fatalf("expected case expr, got %T", sel.Items[0].Expr)
	}
}

func TestParseDistinctAndStar(t *testing.T) {
	s := parseOne(t, "x = SELECT DISTINCT S.*, 1 AS one FROM Sales AS S")
	sel := s.(*AssignStmt).Query.(*SelectStmt)
	if !sel.Distinct {
		t.Fatal("distinct lost")
	}
	if !sel.Items[0].Star || sel.Items[0].StarQualifier != "S" {
		t.Fatalf("qualified star = %+v", sel.Items[0])
	}
}

func TestParseInLiteralList(t *testing.T) {
	s := parseOne(t, "x = SELECT * FROM T WHERE v IN (1, 2, 3)")
	sel := s.(*AssignStmt).Query.(*SelectStmt)
	in := sel.Where.(*expr.In)
	set, ok := in.Source.(*expr.SetSource)
	if !ok || set.Set.Len() != 3 {
		t.Fatalf("in source = %+v", in.Source)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x =",
		"SELECT FROM t",
		"x = SELECT * FROM",
		"CREATE TABLE t (a unknowntype)",
		"x = EVENT MOUSE_DOWN AS D RETURN",
		"x = SELECT * FROM t WHERE v IN",
		"x = SELECT * FROM (SELECT a FROM t)", // subquery needs alias
		"x = SELECT * FROM t@bogus-1",
		"x = BACKWARD TRACE FROM t TO",
		"insert into t values",
		"x = SELECT sum(*) FROM t",
		"x = EVENT MOUSE_DOWN AS D WHERE FORALL m IN Z m.y > 1 RETURN (D.t)",
		"x = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `-- line comment
// another comment
▷ paper-style comment
x = SELECT 1 AS a`
	s := parseOne(t, src)
	if s.(*AssignStmt).Name != "x" {
		t.Fatal("comment handling broke parsing")
	}
}

func TestParseMultiStatementProgram(t *testing.T) {
	src := `CREATE TABLE t (a int);
INSERT INTO t VALUES (1);
v = SELECT a FROM t;
P = render(v, 'circle');`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements", len(stmts))
	}
	r := stmts[3].(*AssignStmt).Query.(*RenderStmt)
	if r.MarkType != "circle" {
		t.Fatalf("mark type = %s", r.MarkType)
	}
	if _, ok := r.Inner.(*RelRefQuery); !ok {
		t.Fatalf("render inner = %T", r.Inner)
	}
}

func TestQueryString(t *testing.T) {
	s := parseOne(t, "x = SELECT a, b AS c FROM t@vnow-1 AS u WHERE a > 1 UNION SELECT a, b FROM t")
	str := QueryString(s.(*AssignStmt).Query)
	for _, frag := range []string{"SELECT", "UNION", "t@vnow-1", "AS c", "WHERE"} {
		if !strings.Contains(str, frag) {
			t.Errorf("QueryString missing %q in %q", frag, str)
		}
	}
}

func TestParseDeleteStmt(t *testing.T) {
	s := parseOne(t, "DELETE FROM t WHERE a > 5")
	del := s.(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestLexerNumbersAndQualifiedRefs(t *testing.T) {
	// "C.t" must not lex as a float; "1.5" must.
	e, err := ParseExpr("C.t + 1.5")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*expr.Binary)
	if c, ok := b.L.(*expr.Column); !ok || c.Qualifier != "C" || c.Name != "t" {
		t.Fatalf("left = %v", b.L)
	}
	if l, ok := b.R.(*expr.Lit); !ok || l.V.String() != "1.5" {
		t.Fatalf("right = %v", b.R)
	}
}

func TestStringEscapes(t *testing.T) {
	e, err := ParseExpr("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*expr.Lit).V.AsString() != "it's" {
		t.Fatalf("escaped string = %q", e.(*expr.Lit).V.AsString())
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 AND NOT false")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(&expr.Context{Funcs: expr.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Truthy() {
		t.Fatalf("precedence eval = %s", v)
	}
}
