package parser

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: the parser never panics, whatever bytes it is fed — it either
// produces statements or returns an error. DVMS accepts programs from
// hosts, so front-end robustness matters.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		_, _ = ParseQuery(src)
		_, _ = ParseExpr(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Mutations of a valid program also must not panic, and truncations must
// error rather than mis-parse.
func TestParserTruncationsError(t *testing.T) {
	src := `selected = SELECT DISTINCT SP.productId
  FROM C, SPLOT_POINTS@vnow-1 AS SP
  WHERE in_rectangle(SP.center_x, SP.center_y, 0, 0, (SELECT max(x) FROM C), 100)`
	for cut := 1; cut < len(src); cut += 7 {
		trunc := src[:cut]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, r)
				}
			}()
			_, _ = Parse(trunc)
		}()
	}
	// A fully balanced prefix that is a complete statement still parses.
	if _, err := Parse("x = SELECT 1 AS a"); err != nil {
		t.Fatal(err)
	}
}

// Deeply nested expressions parse without stack trouble at reasonable
// depths.
func TestParserDeepNesting(t *testing.T) {
	depth := 200
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("nil expression")
	}
	// unbalanced version errors cleanly
	if _, err := ParseExpr(strings.Repeat("(", depth) + "1"); err == nil {
		t.Fatal("unbalanced parens should error")
	}
}

// Keywords are case-insensitive throughout.
func TestKeywordCaseInsensitivity(t *testing.T) {
	variants := []string{
		"x = select a from t where a > 1 group by a having count(*) > 0 order by a limit 1",
		"X = SELECT a FROM t WHERE a > 1 GROUP BY a HAVING count(*) > 0 ORDER BY a LIMIT 1",
		"x = SeLeCt a FrOm t WhErE a > 1 gRoUp By a HaViNg count(*) > 0 oRdEr By a LiMiT 1",
	}
	for _, src := range variants {
		if _, err := Parse(src); err != nil {
			t.Errorf("variant failed: %q: %v", src, err)
		}
	}
}
