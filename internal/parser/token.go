// Package parser implements the DeVIL language front end: a lexer and a
// recursive-descent parser producing statement ASTs over the expression
// trees of internal/expr.
//
// The surface language follows the paper's listings (DeVIL 1-4): SQL-like
// SELECT statements with UNION/MINUS/INTERSECT, assignment statements that
// define views, EVENT statements with Kleene closure and FORALL/EXISTS
// quantifiers, BACKWARD/FORWARD TRACE statements, render() calls, and
// @vnow-i / @tnow-j version suffixes on relation references.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind enumerates lexical token classes.
type TokKind uint8

// Token kinds. Keywords are lexed as TokIdent and matched case-insensitively
// by the parser, matching SQL convention.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokComma
	TokSemi
	TokDot
	TokAt
	TokStar
	TokPlus
	TokMinus
	TokSlash
	TokPercent
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokConcat
)

// Token is one lexical unit with its source position (1-based line/col).
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// Is reports whether the token is an identifier matching the keyword
// case-insensitively.
func (t Token) Is(keyword string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, keyword)
}

// lexer scans DeVIL source into tokens. Comments: `--`, `//`, and the
// paper's `▷` marker, all to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("lex error at %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(r rune, size int) {
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, size := l.peekRune()
		if size == 0 {
			return
		}
		switch {
		case unicode.IsSpace(r):
			l.advance(r, size)
		case r == '▷':
			l.skipLine()
		case r == '-' && strings.HasPrefix(l.src[l.pos:], "--"):
			l.skipLine()
		case r == '/' && strings.HasPrefix(l.src[l.pos:], "//"):
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for {
		r, size := l.peekRune()
		if size == 0 || r == '\n' {
			return
		}
		l.advance(r, size)
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, size := l.peekRune()
	if size == 0 {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for {
			r, size := l.peekRune()
			if size == 0 || !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_') {
				break
			}
			l.advance(r, size)
		}
		return mk(TokIdent, l.src[start:l.pos]), nil
	case unicode.IsDigit(r) || (r == '.' && l.nextIsDigit()):
		start := l.pos
		seenDot, seenExp := false, false
		for {
			r, size := l.peekRune()
			if size == 0 {
				break
			}
			if unicode.IsDigit(r) {
				l.advance(r, size)
				continue
			}
			if r == '.' && !seenDot && !seenExp {
				// Disambiguate "1.5" from "C.t" style qualified refs on
				// numbers: a dot is part of the number only when followed
				// by a digit.
				if l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1]) {
					seenDot = true
					l.advance(r, size)
					continue
				}
				break
			}
			if (r == 'e' || r == 'E') && !seenExp {
				rest := l.src[l.pos+1:]
				if len(rest) > 0 && (isDigitByte(rest[0]) || ((rest[0] == '+' || rest[0] == '-') && len(rest) > 1 && isDigitByte(rest[1]))) {
					seenExp = true
					l.advance(r, size)
					sr, ssize := l.peekRune()
					if sr == '+' || sr == '-' {
						l.advance(sr, ssize)
					}
					continue
				}
			}
			break
		}
		return mk(TokNumber, l.src[start:l.pos]), nil
	case r == '\'':
		l.advance(r, size)
		var b strings.Builder
		for {
			r, size := l.peekRune()
			if size == 0 {
				return Token{}, l.errorf("unterminated string literal")
			}
			l.advance(r, size)
			if r == '\'' {
				// '' escapes a single quote
				if nr, nsize := l.peekRune(); nr == '\'' {
					l.advance(nr, nsize)
					b.WriteByte('\'')
					continue
				}
				return mk(TokString, b.String()), nil
			}
			b.WriteRune(r)
		}
	}
	l.advance(r, size)
	switch r {
	case '(':
		return mk(TokLParen, "("), nil
	case ')':
		return mk(TokRParen, ")"), nil
	case '{':
		return mk(TokLBrace, "{"), nil
	case '}':
		return mk(TokRBrace, "}"), nil
	case ',':
		return mk(TokComma, ","), nil
	case ';':
		return mk(TokSemi, ";"), nil
	case '.':
		return mk(TokDot, "."), nil
	case '@':
		return mk(TokAt, "@"), nil
	case '*':
		return mk(TokStar, "*"), nil
	case '+':
		return mk(TokPlus, "+"), nil
	case '-':
		return mk(TokMinus, "-"), nil
	case '/':
		return mk(TokSlash, "/"), nil
	case '%':
		return mk(TokPercent, "%"), nil
	case '=':
		if nr, nsize := l.peekRune(); nr == '=' {
			l.advance(nr, nsize)
		}
		return mk(TokEq, "="), nil
	case '!':
		if nr, nsize := l.peekRune(); nr == '=' {
			l.advance(nr, nsize)
			return mk(TokNe, "!="), nil
		}
		return Token{}, l.errorf("unexpected character %q", r)
	case '<':
		if nr, nsize := l.peekRune(); nr == '=' {
			l.advance(nr, nsize)
			return mk(TokLe, "<="), nil
		} else if nr == '>' {
			l.advance(nr, nsize)
			return mk(TokNe, "<>"), nil
		}
		return mk(TokLt, "<"), nil
	case '>':
		if nr, nsize := l.peekRune(); nr == '=' {
			l.advance(nr, nsize)
			return mk(TokGe, ">="), nil
		}
		return mk(TokGt, ">"), nil
	case '|':
		if nr, nsize := l.peekRune(); nr == '|' {
			l.advance(nr, nsize)
			return mk(TokConcat, "||"), nil
		}
		return Token{}, l.errorf("unexpected character %q (did you mean ||?)", r)
	default:
		return Token{}, l.errorf("unexpected character %q", r)
	}
}

func (l *lexer) nextIsDigit() bool {
	return l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1])
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

// lexAll scans the entire source, returning the token stream (terminated by
// TokEOF).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
