package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
)

// Parser consumes a token stream and produces DeVIL statements.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a whole DeVIL program (statements separated by semicolons).
func Parse(src string) ([]Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.at(TokSemi) {
			p.advance()
		}
		if p.at(TokEOF) {
			return out, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.at(TokSemi) && !p.at(TokEOF) {
			return nil, p.errorf("expected ';' after statement")
		}
	}
}

// ParseQuery parses a single query expression (no assignment).
func ParseQuery(src string) (QueryExpr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) && !p.at(TokSemi) {
		return nil, p.errorf("unexpected trailing input after query")
	}
	return q, nil
}

// ParseExpr parses a standalone scalar expression, used by the precision
// rule language and by tests.
func ParseExpr(src string) (expr.Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected trailing input after expression")
	}
	return e, nil
}

// --- token helpers ---

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}
func (p *Parser) at(k TokKind) bool   { return p.cur().Kind == k }
func (p *Parser) atKw(kw string) bool { return p.cur().Is(kw) }

func (p *Parser) errorf(format string, args ...any) error {
	t := p.cur()
	where := fmt.Sprintf("%d:%d", t.Line, t.Col)
	what := t.Text
	if t.Kind == TokEOF {
		what = "end of input"
	}
	return fmt.Errorf("parse error at %s near %q: %s", where, what, fmt.Sprintf(format, args...))
}

func (p *Parser) expect(k TokKind, what string) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s", what)
	}
	return p.advance(), nil
}

func (p *Parser) expectKw(kw string) error {
	if !p.atKw(kw) {
		return p.errorf("expected keyword %s", kw)
	}
	p.advance()
	return nil
}

func (p *Parser) acceptKw(kw string) bool {
	if p.atKw(kw) {
		p.advance()
		return true
	}
	return false
}

// reserved words that terminate identifiers in expressions/aliases.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "UNION": true,
	"MINUS": true, "INTERSECT": true, "ALL": true, "DISTINCT": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"EVENT": true, "RETURN": true, "FORALL": true, "EXISTS": true,
	"BACKWARD": true, "FORWARD": true, "TRACE": true, "TO": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "DELETE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "TRUE": true, "FALSE": true, "DESC": true,
	"ASC": true, "ON": true, "BETWEEN": true,
}

func isReserved(s string) bool { return reserved[strings.ToUpper(s)] }

// --- statements ---

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.atKw("CREATE"):
		return p.parseCreateTable()
	case p.atKw("INSERT"):
		return p.parseInsert()
	case p.atKw("DELETE"):
		return p.parseDelete()
	case p.at(TokIdent) && !isReserved(p.cur().Text) && p.peek().Kind == TokEq:
		name := p.advance().Text
		p.advance() // '='
		q, err := p.parseAssignRHS()
		if err != nil {
			return nil, err
		}
		if ev, ok := q.(*eventRHS); ok {
			ev.stmt.Name = name
			return ev.stmt, nil
		}
		return &AssignStmt{Name: name, Query: q.(QueryExpr)}, nil
	case p.atKw("SELECT"):
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: "", Query: q}, nil
	default:
		return nil, p.errorf("expected a statement (CREATE, INSERT, DELETE, SELECT, or name = ...)")
	}
}

// eventRHS lets parseAssignRHS return an EventStmt (which is a Statement,
// not a QueryExpr) through the same code path.
type eventRHS struct{ stmt *EventStmt }

func (e *eventRHS) query() {}

func (p *Parser) parseAssignRHS() (any, error) {
	switch {
	case p.atKw("EVENT"):
		ev, err := p.parseEventStmt()
		if err != nil {
			return nil, err
		}
		return &eventRHS{stmt: ev}, nil
	default:
		return p.parseQueryExpr()
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	var cols []relation.Column
	for {
		colTok, err := p.expect(TokIdent, "column name")
		if err != nil {
			return nil, err
		}
		typTok, err := p.expect(TokIdent, "column type")
		if err != nil {
			return nil, err
		}
		kind, err := kindFromName(typTok.Text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		cols = append(cols, relation.Col(colTok.Text, kind))
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: nameTok.Text, Schema: relation.NewSchema(cols...)}, nil
}

func kindFromName(s string) (relation.Kind, error) {
	switch strings.ToLower(s) {
	case "int", "integer", "bigint":
		return relation.KindInt, nil
	case "float", "real", "double":
		return relation.KindFloat, nil
	case "string", "text", "varchar":
		return relation.KindString, nil
	case "bool", "boolean":
		return relation.KindBool, nil
	default:
		return relation.KindNull, fmt.Errorf("unknown column type %q", s)
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: nameTok.Text}
	if p.at(TokLParen) && p.peek().Kind == TokIdent && !p.peek().Is("SELECT") {
		p.advance()
		for {
			c, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c.Text)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.atKw("VALUES"):
		p.advance()
		for {
			if _, err := p.expect(TokLParen, "'('"); err != nil {
				return nil, err
			}
			var row []expr.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.at(TokComma) {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
	case p.atKw("SELECT") || p.at(TokLParen):
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, p.errorf("expected VALUES or SELECT in INSERT")
	}
	return ins, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: nameTok.Text}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

// --- queries ---

func (p *Parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseQueryPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOpKind
		switch {
		case p.atKw("UNION"):
			op = SetUnion
		case p.atKw("MINUS"):
			op = SetMinus
		case p.atKw("INTERSECT"):
			op = SetIntersect
		default:
			return left, nil
		}
		p.advance()
		all := false
		if op == SetUnion && p.acceptKw("ALL") {
			all = true
		}
		right, err := p.parseQueryPrimary()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Op: op, All: all, L: left, R: right}
	}
}

func (p *Parser) parseQueryPrimary() (QueryExpr, error) {
	switch {
	case p.atKw("SELECT"):
		return p.parseSelect()
	case p.atKw("BACKWARD"), p.atKw("FORWARD"):
		return p.parseTrace()
	case p.atKw("RENDER"):
		return p.parseRender()
	case p.at(TokLParen):
		p.advance()
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		// allow set ops after a parenthesized query: (A MINUS B) UNION C
		return q, nil
	case p.at(TokIdent) && !isReserved(p.cur().Text):
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		return &RelRefQuery{Ref: ref}, nil
	default:
		return nil, p.errorf("expected SELECT, TRACE, render(), or a relation name")
	}
}

func (p *Parser) parseRender() (QueryExpr, error) {
	p.advance() // RENDER
	if _, err := p.expect(TokLParen, "'(' after render"); err != nil {
		return nil, err
	}
	inner, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	r := &RenderStmt{Inner: inner}
	if p.at(TokComma) {
		p.advance()
		mt, err := p.expect(TokString, "mark type string")
		if err != nil {
			return nil, err
		}
		r.MarkType = strings.ToLower(mt.Text)
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *Parser) parseTrace() (QueryExpr, error) {
	backward := p.atKw("BACKWARD")
	p.advance()
	if err := p.expectKw("TRACE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	tr := &TraceStmt{Backward: backward, From: from}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		tr.Where = e
	}
	if err := p.expectKw("TO"); err != nil {
		return nil, err
	}
	to, err := p.expect(TokIdent, "target relation name")
	if err != nil {
		return nil, err
	}
	tr.To = to.Text
	return tr, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	p.advance() // SELECT
	sel := &SelectStmt{Limit: -1}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.atKw("GROUP") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.atKw("ORDER") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.expect(TokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.Text)
		if err != nil || v < 0 {
			return nil, p.errorf("invalid LIMIT %q", n.Text)
		}
		sel.Limit = v
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.at(TokStar) {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// qualified star: name.*
	if p.at(TokIdent) && !isReserved(p.cur().Text) && p.peek().Kind == TokDot {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokStar {
			q := p.advance().Text
			p.advance() // .
			p.advance() // *
			return SelectItem{Star: true, StarQualifier: q}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.expect(TokIdent, "alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a.Text
	} else if p.at(TokIdent) && !isReserved(p.cur().Text) {
		item.Alias = p.advance().Text
	}
	return item, nil
}

func (p *Parser) parseFromList() ([]TableRef, error) {
	var out []TableRef
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		// Only consume a comma when the next token can start a table ref;
		// otherwise the comma belongs to an enclosing construct, e.g. the
		// mark-type argument of render(SELECT ... FROM t, 'rect').
		if p.at(TokComma) && (p.peek().Kind == TokIdent || p.peek().Kind == TokLParen) {
			p.advance()
			continue
		}
		return out, nil
	}
}

func (p *Parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.at(TokLParen) {
		p.advance()
		q, err := p.parseQueryExpr()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return TableRef{}, err
		}
		ref.Sub = q
	} else {
		nameTok, err := p.expect(TokIdent, "relation name")
		if err != nil {
			return TableRef{}, err
		}
		if isReserved(nameTok.Text) {
			return TableRef{}, p.errorf("reserved word %q cannot name a relation", nameTok.Text)
		}
		ref.Name = nameTok.Text
		if p.at(TokAt) {
			p.advance()
			v, err := p.parseVersionRef()
			if err != nil {
				return TableRef{}, err
			}
			ref.Version = v
		}
	}
	if p.acceptKw("AS") {
		a, err := p.expect(TokIdent, "alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.at(TokIdent) && !isReserved(p.cur().Text) {
		ref.Alias = p.advance().Text
	}
	if ref.Sub != nil && ref.Alias == "" {
		return TableRef{}, p.errorf("subquery in FROM requires an alias")
	}
	return ref, nil
}

// parseVersionRef parses `vnow[-i]` or `tnow[-j]`, with or without braces:
// rel@vnow-1 and rel@{vnow-1} are both accepted (the paper uses both forms).
func (p *Parser) parseVersionRef() (relation.VersionRef, error) {
	braced := false
	if p.at(TokLBrace) {
		braced = true
		p.advance()
	}
	kw, err := p.expect(TokIdent, "vnow or tnow")
	if err != nil {
		return relation.VersionRef{}, err
	}
	var kind relation.VersionKind
	switch strings.ToLower(kw.Text) {
	case "vnow":
		kind = relation.VersionVNow
	case "tnow":
		kind = relation.VersionTNow
	default:
		return relation.VersionRef{}, p.errorf("expected vnow or tnow, got %q", kw.Text)
	}
	offset := 0
	if p.at(TokMinus) {
		p.advance()
		n, err := p.expect(TokNumber, "version offset")
		if err != nil {
			return relation.VersionRef{}, err
		}
		offset, err = strconv.Atoi(n.Text)
		if err != nil || offset < 0 {
			return relation.VersionRef{}, p.errorf("invalid version offset %q", n.Text)
		}
	}
	if braced {
		if _, err := p.expect(TokRBrace, "'}'"); err != nil {
			return relation.VersionRef{}, err
		}
	}
	return relation.VersionRef{Kind: kind, Offset: offset}, nil
}

// --- EVENT statements ---

func (p *Parser) parseEventStmt() (*EventStmt, error) {
	p.advance() // EVENT
	ev := &EventStmt{}
	for {
		typTok, err := p.expect(TokIdent, "event type")
		if err != nil {
			return nil, err
		}
		elem := SeqElem{Type: strings.ToUpper(typTok.Text)}
		if p.at(TokStar) {
			p.advance()
			elem.Kleene = true
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		aliasTok, err := p.expect(TokIdent, "event alias")
		if err != nil {
			return nil, err
		}
		elem.Alias = aliasTok.Text
		// The paper writes "MOUSE_MOVE* AS M*" — tolerate a trailing star
		// on the alias as decoration.
		if p.at(TokStar) {
			p.advance()
		}
		ev.Seq = append(ev.Seq, elem)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		for {
			pred, err := p.parseEventPred(ev)
			if err != nil {
				return nil, err
			}
			ev.Filters = append(ev.Filters, pred)
			if p.atKw("AND") {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectKw("RETURN"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokLParen, "'(' opening a RETURN group"); err != nil {
			return nil, err
		}
		var group []SelectItem
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			group = append(group, item)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, "')' closing a RETURN group"); err != nil {
			return nil, err
		}
		ev.Return = append(ev.Return, group)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	return ev, nil
}

func (p *Parser) parseEventPred(ev *EventStmt) (EventPred, error) {
	quant := QuantNone
	switch {
	case p.atKw("FORALL"):
		quant = QuantForall
	case p.atKw("EXISTS"):
		quant = QuantExists
	}
	if quant == QuantNone {
		e, err := p.parseComparisonLevel()
		if err != nil {
			return EventPred{}, err
		}
		return EventPred{Cond: e}, nil
	}
	p.advance() // FORALL/EXISTS
	varTok, err := p.expect(TokIdent, "quantifier variable")
	if err != nil {
		return EventPred{}, err
	}
	if err := p.expectKw("IN"); err != nil {
		return EventPred{}, err
	}
	overTok, err := p.expect(TokIdent, "sequence alias")
	if err != nil {
		return EventPred{}, err
	}
	found := false
	for _, s := range ev.Seq {
		if strings.EqualFold(s.Alias, overTok.Text) {
			found = true
			break
		}
	}
	if !found {
		return EventPred{}, p.errorf("quantifier ranges over unknown alias %q", overTok.Text)
	}
	cond, err := p.parseComparisonLevel()
	if err != nil {
		return EventPred{}, err
	}
	return EventPred{Quant: quant, Var: varTok.Text, Over: overTok.Text, Cond: cond}, nil
}

// --- expressions (precedence climbing) ---

func (p *Parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKw("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (expr.Expr, error) {
	if p.atKw("NOT") && !p.peek().Is("IN") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNot, X: x}, nil
	}
	return p.parseComparisonLevel()
}

func (p *Parser) parseComparisonLevel() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.atKw("IS") {
		p.advance()
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{X: left, Negate: neg}, nil
	}
	// [NOT] IN
	if p.atKw("IN") || (p.atKw("NOT") && p.peek().Is("IN")) {
		neg := false
		if p.atKw("NOT") {
			neg = true
			p.advance()
		}
		p.advance() // IN
		src, err := p.parseInSource()
		if err != nil {
			return nil, err
		}
		return &expr.In{X: left, Source: src, Negate: neg}, nil
	}
	if p.atKw("BETWEEN") {
		p.advance()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: expr.OpAnd,
			L: &expr.Binary{Op: expr.OpGe, L: left, R: lo},
			R: &expr.Binary{Op: expr.OpLe, L: left, R: hi}}, nil
	}
	var op expr.BinOp
	switch p.cur().Kind {
	case TokEq:
		op = expr.OpEq
	case TokNe:
		op = expr.OpNe
	case TokLt:
		op = expr.OpLt
	case TokLe:
		op = expr.OpLe
	case TokGt:
		op = expr.OpGt
	case TokGe:
		op = expr.OpGe
	default:
		return left, nil
	}
	p.advance()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &expr.Binary{Op: op, L: left, R: right}, nil
}

func (p *Parser) parseInSource() (expr.InSource, error) {
	if p.at(TokLParen) {
		p.advance()
		if p.atKw("SELECT") {
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			return &expr.Subquery{Query: q}, nil
		}
		// literal list: IN (1, 2, 3)
		set := expr.NewValueSet()
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v, err := e.Eval(&expr.Context{})
			if err != nil {
				return nil, p.errorf("IN list elements must be constants: %v", err)
			}
			set.Add(v)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &expr.SetSource{Set: set}, nil
	}
	// IN relname[@version]
	nameTok, err := p.expect(TokIdent, "relation name or subquery after IN")
	if err != nil {
		return nil, err
	}
	src := &expr.RelationSource{Name: nameTok.Text}
	if p.at(TokAt) {
		p.advance()
		v, err := p.parseVersionRef()
		if err != nil {
			return nil, err
		}
		src.Version = v
	}
	return src, nil
}

func (p *Parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch p.cur().Kind {
		case TokPlus:
			op = expr.OpAdd
		case TokMinus:
			op = expr.OpSub
		case TokConcat:
			op = expr.OpConcat
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch p.cur().Kind {
		case TokStar:
			op = expr.OpMul
		case TokSlash:
			op = expr.OpDiv
		case TokPercent:
			op = expr.OpMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &expr.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (expr.Expr, error) {
	if p.at(TokMinus) {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	if p.at(TokPlus) {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return expr.Literal(relation.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return expr.Literal(relation.Int(n)), nil
	case t.Kind == TokString:
		p.advance()
		return expr.Literal(relation.String(t.Text)), nil
	case t.Is("TRUE"):
		p.advance()
		return expr.Literal(relation.Bool(true)), nil
	case t.Is("FALSE"):
		p.advance()
		return expr.Literal(relation.Bool(false)), nil
	case t.Is("NULL"):
		p.advance()
		return expr.Literal(relation.Null()), nil
	case t.Is("CASE"):
		return p.parseCase()
	case t.Kind == TokLParen:
		p.advance()
		if p.atKw("SELECT") {
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			return &expr.Subquery{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent && !isReserved(t.Text):
		return p.parseIdentExpr()
	default:
		return nil, p.errorf("expected an expression")
	}
}

// aggregate function names recognized during parsing.
var aggNames = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *Parser) parseIdentExpr() (expr.Expr, error) {
	name := p.advance().Text
	// function call
	if p.at(TokLParen) {
		p.advance()
		lower := strings.ToLower(name)
		if aggNames[lower] {
			agg := &expr.Agg{Name: lower}
			if p.acceptKw("DISTINCT") {
				agg.Distinct = true
			}
			if p.at(TokStar) {
				p.advance()
				if lower != "count" {
					return nil, p.errorf("%s(*) is only valid for count", lower)
				}
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		call := &expr.Call{Name: lower}
		if !p.at(TokRParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.at(TokComma) {
					p.advance()
					continue
				}
				break
			}
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return call, nil
	}
	// qualified column: name.col
	if p.at(TokDot) {
		p.advance()
		col, err := p.expect(TokIdent, "column name after '.'")
		if err != nil {
			return nil, err
		}
		return &expr.Column{Qualifier: name, Name: col.Text}, nil
	}
	return &expr.Column{Name: name}, nil
}

func (p *Parser) parseCase() (expr.Expr, error) {
	p.advance() // CASE
	c := &expr.Case{}
	for p.atKw("WHEN") {
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
