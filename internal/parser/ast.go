package parser

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
)

// Statement is a parsed DeVIL statement.
type Statement interface{ stmt() }

// QueryExpr is the right-hand side of an assignment or a standalone query.
type QueryExpr interface{ query() }

// CreateTableStmt declares a base relation: CREATE TABLE name (col kind, ...).
type CreateTableStmt struct {
	Name   string
	Schema relation.Schema
}

func (*CreateTableStmt) stmt() {}

// InsertStmt inserts literal rows or query results into a base relation.
type InsertStmt struct {
	Table   string
	Columns []string      // optional column list
	Rows    [][]expr.Expr // literal VALUES rows (constant expressions)
	Query   QueryExpr     // INSERT INTO t SELECT ... (exclusive with Rows)
}

func (*InsertStmt) stmt() {}

// DeleteStmt removes rows matching a predicate (utility for examples/tests;
// view maintenance reacts to deletes like any other base change).
type DeleteStmt struct {
	Table string
	Where expr.Expr // nil deletes all rows
}

func (*DeleteStmt) stmt() {}

// AssignStmt is DeVIL's core statement form: `name = <query>` defines the
// view `name` (Fig 3: each statement is an assignment whose RHS is an
// operator).
type AssignStmt struct {
	Name  string
	Query QueryExpr
}

func (*AssignStmt) stmt() {}

// EventStmt declares a compound event stream (DeVIL 2):
//
//	C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
//	    WHERE FORALL m IN M m.y > 5
//	    RETURN (D.t, D.x, ...), (M.t, ...)
type EventStmt struct {
	Name    string
	Seq     []SeqElem
	Filters []EventPred
	Return  [][]SelectItem
}

func (*EventStmt) stmt() {}

// SeqElem is one element of an event sequence pattern.
type SeqElem struct {
	Type   string // low-level event type, e.g. MOUSE_DOWN
	Alias  string // binding name used by predicates and RETURN
	Kleene bool   // repeated element (MOUSE_MOVE*)
}

// Quantifier classifies event predicates.
type Quantifier uint8

// Event predicate quantifiers. Plain predicates filter events from the input
// stream; quantified predicates transition the NFA to a reject state on
// failure (§2.1.2).
const (
	QuantNone Quantifier = iota
	QuantForall
	QuantExists
)

// EventPred is one conjunct of an EVENT statement's WHERE clause.
type EventPred struct {
	Quant Quantifier
	Var   string // bound variable for quantified predicates
	Over  string // sequence alias ranged over (Kleene elements)
	Cond  expr.Expr
}

// SelectStmt is a SELECT core. From may be empty for constant selects.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
}

func (*SelectStmt) query() {}

// SelectItem is one projection: an expression with an optional alias, or a
// star (optionally qualified: S.*).
type SelectItem struct {
	Expr          expr.Expr
	Alias         string
	Star          bool
	StarQualifier string
}

// OutName returns the output column name: the alias if given, else the
// column's own name for bare references, else a rendering of the expression.
func (s SelectItem) OutName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(*expr.Column); ok {
		return c.Name
	}
	if s.Expr != nil {
		return s.Expr.String()
	}
	return "*"
}

// TableRef names an input relation (with optional version suffix and alias)
// or an inline subquery.
type TableRef struct {
	Name    string
	Alias   string
	Version relation.VersionRef
	Sub     QueryExpr // non-nil for (SELECT ...) AS alias
}

// BindName returns the name the relation's columns are qualified under.
func (t TableRef) BindName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// SetOpKind enumerates set operations.
type SetOpKind uint8

// Set operations supported between SELECT cores.
const (
	SetUnion SetOpKind = iota
	SetMinus
	SetIntersect
)

// String names the operation.
func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "UNION"
	case SetMinus:
		return "MINUS"
	default:
		return "INTERSECT"
	}
}

// SetOp combines two queries: UNION [ALL] | MINUS | INTERSECT. UNION without
// ALL deduplicates, as in SQL.
type SetOp struct {
	Op   SetOpKind
	All  bool
	L, R QueryExpr
}

func (*SetOp) query() {}

// RenderStmt is `P = render(<query> [, 'marktype'])` — the render table UDF
// that maps a marks relation to the pixels table (§2.1.1). When MarkType is
// empty the renderer infers the mark type from the schema.
type RenderStmt struct {
	Inner    QueryExpr
	MarkType string
}

func (*RenderStmt) query() {}

// TraceStmt is the provenance statement of §3.1:
//
//	B = BACKWARD TRACE FROM SPLOT_POINTS@vnow-1 AS SP, C
//	    WHERE in_rectangle(...) TO Sales;
//
// FORWARD TRACE mirrors it, tracing from base rows to view outputs.
type TraceStmt struct {
	Backward bool
	From     []TableRef
	Where    expr.Expr
	To       string
}

func (*TraceStmt) query() {}

// RelRefQuery lets a bare relation name appear where a query is expected
// (e.g. `X = SomeView` aliasing, or render(MARKS)).
type RelRefQuery struct {
	Ref TableRef
}

func (*RelRefQuery) query() {}

// QueryString renders a compact one-line description of a query for logs and
// error messages.
func QueryString(q QueryExpr) string {
	switch n := q.(type) {
	case *SelectStmt:
		var b strings.Builder
		b.WriteString("SELECT ")
		for i, it := range n.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.Star {
				if it.StarQualifier != "" {
					b.WriteString(it.StarQualifier + ".")
				}
				b.WriteString("*")
			} else {
				b.WriteString(it.Expr.String())
				if it.Alias != "" {
					b.WriteString(" AS " + it.Alias)
				}
			}
		}
		if len(n.From) > 0 {
			b.WriteString(" FROM ")
			for i, f := range n.From {
				if i > 0 {
					b.WriteString(", ")
				}
				if f.Sub != nil {
					b.WriteString("(" + QueryString(f.Sub) + ")")
				} else {
					b.WriteString(f.Name + f.Version.String())
				}
				if f.Alias != "" {
					b.WriteString(" AS " + f.Alias)
				}
			}
		}
		if n.Where != nil {
			b.WriteString(" WHERE " + n.Where.String())
		}
		return b.String()
	case *SetOp:
		op := n.Op.String()
		if n.All {
			op += " ALL"
		}
		return QueryString(n.L) + " " + op + " " + QueryString(n.R)
	case *RenderStmt:
		return "render(" + QueryString(n.Inner) + ")"
	case *TraceStmt:
		dir := "BACKWARD"
		if !n.Backward {
			dir = "FORWARD"
		}
		return dir + " TRACE ... TO " + n.To
	case *RelRefQuery:
		return n.Ref.Name + n.Ref.Version.String()
	default:
		return "?"
	}
}
