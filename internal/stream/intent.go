package stream

import (
	"math"

	"repro/internal/workload"
)

// IntentModel estimates P(a_i, t): the probability that the user will
// perform action a_i (interact with widget i) within time t. The paper's
// observation (§3.3): interactions arrive through a constrained input
// modality (the mouse), for which simple kinematic models work very well —
// "the model is 82% accurate at predicting the widget that the user will
// interact with in 200ms".
//
// The model extrapolates the pointer's position HorizonMs ahead using a
// smoothed velocity estimate and softmaxes the negative distances to each
// widget.
type IntentModel struct {
	Widgets []workload.Widget
	// HorizonMs is the prediction horizon (the paper's 200 ms).
	HorizonMs float64
	// TauPx is the softmax temperature in pixels; smaller = sharper.
	TauPx float64
	// SmoothSamples is how many trailing samples the velocity estimate
	// averages over (default 3).
	SmoothSamples int
}

// NewIntentModel builds a model with the paper's 200 ms horizon.
func NewIntentModel(widgets []workload.Widget) *IntentModel {
	return &IntentModel{Widgets: widgets, HorizonMs: 200, TauPx: 60, SmoothSamples: 3}
}

// Predict returns a probability per widget given the pointer history so
// far. A uniform distribution is returned when the history is too short to
// estimate velocity — the "relatively uniform" regime in which the streaming
// server interleaves data for many future actions.
func (m *IntentModel) Predict(history []workload.MousePoint) []float64 {
	n := len(m.Widgets)
	probs := make([]float64, n)
	if len(history) < 2 {
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	k := m.SmoothSamples
	if k < 1 {
		k = 3
	}
	if k >= len(history) {
		k = len(history) - 1
	}
	last := history[len(history)-1]
	prev := history[len(history)-1-k]
	dt := float64(last.T - prev.T)
	if dt <= 0 {
		dt = 1
	}
	vx := (last.X - prev.X) / dt // px per ms
	vy := (last.Y - prev.Y) / dt
	px := last.X + vx*m.HorizonMs
	py := last.Y + vy*m.HorizonMs

	var sum float64
	for i, w := range m.Widgets {
		cx, cy := w.Center()
		d := math.Hypot(px-cx, py-cy)
		// Points inside the widget get distance 0.
		if w.Contains(px, py) {
			d = 0
		}
		probs[i] = math.Exp(-d / m.TauPx)
		sum += probs[i]
	}
	if sum == 0 {
		for i := range probs {
			probs[i] = 1 / float64(n)
		}
		return probs
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// Top returns the argmax widget index of a probability vector.
func Top(probs []float64) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// Entropy returns the Shannon entropy of the distribution in bits,
// a measure of how "relatively uniform" the intent model currently is.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Evaluate measures top-1 accuracy of the model at predicting each trace's
// target widget from the state HorizonMs before the trace ends — the
// paper's evaluation protocol.
func (m *IntentModel) Evaluate(traces []workload.MouseTrace) float64 {
	correct := 0
	for _, tr := range traces {
		cut := cutAtHorizon(tr.Points, m.HorizonMs)
		if cut < 2 {
			cut = 2
		}
		probs := m.Predict(tr.Points[:cut])
		if Top(probs) == tr.Target {
			correct++
		}
	}
	return float64(correct) / float64(len(traces))
}

// cutAtHorizon returns the number of samples whose timestamps precede the
// trace end by at least horizon ms.
func cutAtHorizon(pts []workload.MousePoint, horizonMs float64) int {
	if len(pts) == 0 {
		return 0
	}
	end := pts[len(pts)-1].T
	for i := len(pts) - 1; i >= 0; i-- {
		if float64(end-pts[i].T) >= horizonMs {
			return i + 1
		}
	}
	return 1
}
