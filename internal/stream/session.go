package stream

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// SessionParams configures a simulated client/server streaming session: the
// user moves the mouse between widgets (each widget owns one data tile);
// the server continuously streams tile prefixes at bandwidth capacity,
// guided by the shared intent model; every trace ends in a request for the
// target widget's tile.
type SessionParams struct {
	Widgets []workload.Widget
	Tiles   []*Tile
	Traces  []workload.MouseTrace
	Sched   Scheduler
	// BandwidthPerTick is the transfer budget (coefficients) per TickMs.
	BandwidthPerTick int
	// TickMs is the rescheduling period; the paper re-runs the scheduler
	// every 50 ms.
	TickMs int64
	// RenderableUtility is the quality threshold above which a partial
	// tile counts as renderable (default 0.95 of signal energy).
	RenderableUtility float64
}

func (p SessionParams) withDefaults() SessionParams {
	if p.BandwidthPerTick == 0 {
		p.BandwidthPerTick = 64
	}
	if p.TickMs == 0 {
		p.TickMs = 50
	}
	if p.RenderableUtility == 0 {
		p.RenderableUtility = 0.95
	}
	return p
}

// SessionResult aggregates a session's request-time metrics.
type SessionResult struct {
	Scheduler string
	Requests  int
	// MeanUtilityAtRequest is the requested tile's mean quality at the
	// moment of the request.
	MeanUtilityAtRequest float64
	// RenderableAtRequest / RenderableWithin100ms are the fractions of
	// requests whose tile was renderable immediately / within the 100 ms
	// interactivity threshold the paper targets.
	RenderableAtRequest    float64
	RenderableWithin100ms  float64
	MeanMsToRenderable     float64
	TotalCoefficientsSent  int
	MeanIntentEntropyAtReq float64
}

// RunSession simulates the session and returns aggregate metrics.
func RunSession(p SessionParams) (SessionResult, error) {
	p = p.withDefaults()
	if len(p.Widgets) != len(p.Tiles) {
		return SessionResult{}, fmt.Errorf("widgets (%d) and tiles (%d) must correspond", len(p.Widgets), len(p.Tiles))
	}
	model := NewIntentModel(p.Widgets)
	tr := NewTransfer(p.Tiles)
	res := SessionResult{Scheduler: p.Sched.Name()}

	var utilSum, entSum, msToRenderSum float64
	for _, trace := range p.Traces {
		// Replay the trace; the scheduler runs every TickMs with the
		// intent distribution computed from the pointer history so far.
		var nextTick int64
		if len(trace.Points) > 0 {
			nextTick = trace.Points[0].T
		}
		for i := range trace.Points {
			for trace.Points[i].T >= nextTick {
				probs := model.Predict(trace.Points[:i+1])
				before := sum(tr.Received)
				p.Sched.Allocate(tr, probs, p.BandwidthPerTick)
				res.TotalCoefficientsSent += sum(tr.Received) - before
				nextTick += p.TickMs
			}
		}
		// The trace ends in an interaction: a request for the target tile.
		target := trace.Target
		res.Requests++
		probs := model.Predict(trace.Points)
		entSum += Entropy(probs)
		q := tr.Quality(target)
		utilSum += q
		if q >= p.RenderableUtility {
			res.RenderableAtRequest++
			res.RenderableWithin100ms++
			continue
		}
		// After the explicit request, the server dedicates the full
		// bandwidth to the requested tile.
		needed := 0
		for k := tr.Received[target]; k <= p.Tiles[target].Coefficients(); k++ {
			if p.Tiles[target].Utility(k) >= p.RenderableUtility {
				needed = k - tr.Received[target]
				break
			}
		}
		ticks := (needed + p.BandwidthPerTick - 1) / p.BandwidthPerTick
		ms := float64(ticks) * float64(p.TickMs)
		msToRenderSum += ms
		if ms <= 100 {
			res.RenderableWithin100ms++
		}
		tr.Received[target] += needed
	}
	n := float64(res.Requests)
	if n > 0 {
		res.MeanUtilityAtRequest = utilSum / n
		res.RenderableAtRequest /= n
		res.RenderableWithin100ms /= n
		res.MeanMsToRenderable = msToRenderSum / n
		res.MeanIntentEntropyAtReq = entSum / n
	}
	return res, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// FormatResults renders a comparison table across schedulers (the A3
// ablation and the §3.3 experiment output).
func FormatResults(results []SessionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s  %9s  %12s  %12s  %10s\n",
		"scheduler", "util@req", "render@req", "render@100ms", "ms-to-rdr")
	for _, r := range results {
		fmt.Fprintf(&b, "%-18s  %9.3f  %11.1f%%  %11.1f%%  %10.0f\n",
			r.Scheduler, r.MeanUtilityAtRequest,
			r.RenderableAtRequest*100, r.RenderableWithin100ms*100,
			r.MeanMsToRenderable)
	}
	return b.String()
}
