package stream

import (
	"math"
	"math/rand"
)

// Tile is a progressively encoded data tile (§3.3: "data tiles can readily
// be progressively encoded, say, by using wavelet compression").
type Tile struct {
	ID     int
	Size   int
	Data   []float64
	Coeffs []float64
	// prefixEnergy[k] is the squared-coefficient energy captured by the
	// first k progressive coefficients; the utility of a partial download
	// is the captured energy fraction, a concave curve as He et al. assume.
	prefixEnergy []float64
	totalEnergy  float64
}

// NewTile encodes a size×size tile.
func NewTile(id int, data []float64, size int) (*Tile, error) {
	coeffs, err := HaarEncode2D(data, size)
	if err != nil {
		return nil, err
	}
	order := ProgressiveOrder(size)
	prefix := make([]float64, len(order)+1)
	var acc float64
	for i, idx := range order {
		acc += coeffs[idx] * coeffs[idx]
		prefix[i+1] = acc
	}
	return &Tile{
		ID: id, Size: size, Data: data, Coeffs: coeffs,
		prefixEnergy: prefix, totalEnergy: acc,
	}, nil
}

// Coefficients returns the total number of coefficients (the tile's
// "bytes" in the simulation's transfer unit).
func (t *Tile) Coefficients() int { return len(t.Coeffs) }

// Utility returns the fraction of signal energy captured by the first k
// progressive coefficients — the concave partial-execution utility of
// He et al. translated to progressive encoding.
func (t *Tile) Utility(k int) float64 {
	if t.totalEnergy == 0 {
		return 1
	}
	if k < 0 {
		k = 0
	}
	if k >= len(t.prefixEnergy) {
		k = len(t.prefixEnergy) - 1
	}
	return t.prefixEnergy[k] / t.totalEnergy
}

// Decode reconstructs the tile from its first k progressive coefficients.
func (t *Tile) Decode(k int) ([]float64, error) {
	return DecodePrefix(t.Coeffs, t.Size, k)
}

// SyntheticTiles generates n smooth 2D fields (mixtures of Gaussian bumps),
// the kind of pre-aggregated data-cube slice modern visualization systems
// tile (imMens/ForeCache-style).
func SyntheticTiles(n, size int, seed int64) ([]*Tile, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Tile, n)
	for id := 0; id < n; id++ {
		data := make([]float64, size*size)
		bumps := 2 + rng.Intn(4)
		type bump struct{ cx, cy, s, a float64 }
		bs := make([]bump, bumps)
		for b := range bs {
			bs[b] = bump{
				cx: rng.Float64() * float64(size),
				cy: rng.Float64() * float64(size),
				s:  float64(size) * (0.1 + rng.Float64()*0.2),
				a:  10 + rng.Float64()*90,
			}
		}
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				var v float64
				for _, b := range bs {
					dx, dy := float64(x)-b.cx, float64(y)-b.cy
					v += b.a * math.Exp(-(dx*dx+dy*dy)/(2*b.s*b.s))
				}
				data[y*size+x] = v
			}
		}
		t, err := NewTile(id, data, size)
		if err != nil {
			return nil, err
		}
		out[id] = t
	}
	return out, nil
}

// Transfer tracks how much of each tile the client holds.
type Transfer struct {
	Tiles    []*Tile
	Received []int // coefficients received per tile
}

// NewTransfer starts an empty transfer state over the tiles.
func NewTransfer(tiles []*Tile) *Transfer {
	return &Transfer{Tiles: tiles, Received: make([]int, len(tiles))}
}

// Quality returns tile i's current utility.
func (tr *Transfer) Quality(i int) float64 { return tr.Tiles[i].Utility(tr.Received[i]) }

// Remaining returns the coefficients still missing for tile i.
func (tr *Transfer) Remaining(i int) int { return tr.Tiles[i].Coefficients() - tr.Received[i] }

// Scheduler allocates a bandwidth budget (in coefficients) across tiles for
// one 50 ms round, given the current intent distribution.
type Scheduler interface {
	Name() string
	Allocate(tr *Transfer, probs []float64, budget int)
}

// GreedyUtility implements the He et al.-style scheduler adapted in §3.3:
// at every rescheduling point it spends bandwidth chunk by chunk on the
// tile with the highest marginal expected utility P(a_i) · ΔU_i. Because
// utilities are concave, the greedy chunk allocation maximizes total
// expected utility, the convex-optimization objective of the original
// formulation. Tiles whose "deadline passed" are simply rescheduled on the
// next run, per the paper's adaptation.
type GreedyUtility struct {
	// Chunk is the allocation granularity in coefficients (default 16).
	Chunk int
}

// Name identifies the scheduler in experiment output.
func (g *GreedyUtility) Name() string { return "greedy-utility" }

// Allocate spends the budget chunk-by-chunk on max marginal expected
// utility.
func (g *GreedyUtility) Allocate(tr *Transfer, probs []float64, budget int) {
	chunk := g.Chunk
	if chunk <= 0 {
		chunk = 16
	}
	for budget > 0 {
		best, bestGain := -1, 0.0
		for i := range tr.Tiles {
			rem := tr.Remaining(i)
			if rem == 0 {
				continue
			}
			step := chunk
			if step > rem {
				step = rem
			}
			gain := probs[i] * (tr.Tiles[i].Utility(tr.Received[i]+step) - tr.Quality(i))
			if best < 0 || gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return // everything downloaded
		}
		step := chunk
		if step > tr.Remaining(best) {
			step = tr.Remaining(best)
		}
		if step > budget {
			step = budget
		}
		tr.Received[best] += step
		budget -= step
	}
}

// RoundRobin splits the budget evenly across undownloaded tiles,
// ignoring the intent model — the ablation baseline.
type RoundRobin struct{}

// Name identifies the scheduler.
func (RoundRobin) Name() string { return "round-robin" }

// Allocate hands equal chunks to each incomplete tile, cycling until the
// budget is spent or every tile is complete.
func (RoundRobin) Allocate(tr *Transfer, probs []float64, budget int) {
	const chunk = 16
	for budget > 0 {
		progressed := false
		for i := range tr.Tiles {
			if budget <= 0 {
				break
			}
			rem := tr.Remaining(i)
			if rem == 0 {
				continue
			}
			step := chunk
			if step > rem {
				step = rem
			}
			if step > budget {
				step = budget
			}
			tr.Received[i] += step
			budget -= step
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// NoPrefetch never streams anything ahead of the request — the classic
// request-response model the paper identifies as the cause of
// near-interactive latency.
type NoPrefetch struct{}

// Name identifies the scheduler.
func (NoPrefetch) Name() string { return "request-response" }

// Allocate does nothing: data moves only after an explicit request.
func (NoPrefetch) Allocate(*Transfer, []float64, int) {}
