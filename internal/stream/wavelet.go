// Package stream implements the §3.3 continuously-streaming framework for
// near-interactive visualizations: progressively encoded data tiles (Haar
// wavelets), a user intent model P(a_i, t) over a constrained input
// modality, and a concave-utility partial-task scheduler in the style of
// He et al.'s Zeta, re-run every 50 ms.
package stream

import (
	"fmt"
	"math"
)

// HaarEncode2D computes the 2D Haar wavelet transform of a size×size tile
// (size must be a power of two). The result is a coefficient matrix with
// the coarsest approximation at the top-left corner.
func HaarEncode2D(data []float64, size int) ([]float64, error) {
	if size*size != len(data) {
		return nil, fmt.Errorf("haar: data length %d != %d^2", len(data), size)
	}
	if size&(size-1) != 0 || size == 0 {
		return nil, fmt.Errorf("haar: size %d is not a power of two", size)
	}
	out := make([]float64, len(data))
	copy(out, data)
	tmp := make([]float64, size)
	for n := size; n > 1; n /= 2 {
		// rows
		for r := 0; r < n; r++ {
			haarStep(out[r*size:r*size+n], tmp[:n])
		}
		// columns
		for c := 0; c < n; c++ {
			for r := 0; r < n; r++ {
				tmp[r] = out[r*size+c]
			}
			col := make([]float64, n)
			copy(col, tmp[:n])
			haarStep(col, tmp[:n])
			for r := 0; r < n; r++ {
				out[r*size+c] = col[r]
			}
		}
	}
	return out, nil
}

// haarStep performs one level of the 1D Haar transform in place:
// averages to the front half, differences to the back half. The orthonormal
// scaling (√2) keeps energy comparable across levels.
func haarStep(v, tmp []float64) {
	n := len(v)
	h := n / 2
	for i := 0; i < h; i++ {
		tmp[i] = (v[2*i] + v[2*i+1]) / math.Sqrt2
		tmp[h+i] = (v[2*i] - v[2*i+1]) / math.Sqrt2
	}
	copy(v, tmp[:n])
}

// haarInvStep inverts haarStep.
func haarInvStep(v, tmp []float64) {
	n := len(v)
	h := n / 2
	for i := 0; i < h; i++ {
		tmp[2*i] = (v[i] + v[h+i]) / math.Sqrt2
		tmp[2*i+1] = (v[i] - v[h+i]) / math.Sqrt2
	}
	copy(v, tmp[:n])
}

// HaarDecode2D inverts HaarEncode2D.
func HaarDecode2D(coeffs []float64, size int) ([]float64, error) {
	if size*size != len(coeffs) {
		return nil, fmt.Errorf("haar: coeff length %d != %d^2", len(coeffs), size)
	}
	out := make([]float64, len(coeffs))
	copy(out, coeffs)
	tmp := make([]float64, size)
	for n := 2; n <= size; n *= 2 {
		// columns first (inverse order of encode)
		for c := 0; c < n; c++ {
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = out[r*size+c]
			}
			haarInvStep(col, tmp[:n])
			for r := 0; r < n; r++ {
				out[r*size+c] = col[r]
			}
		}
		for r := 0; r < n; r++ {
			haarInvStep(out[r*size:r*size+n], tmp[:n])
		}
	}
	return out, nil
}

// ProgressiveOrder returns coefficient indices ordered coarse-to-fine: the
// approximation coefficient first, then each detail level. A prefix of the
// coefficients in this order is always decodable into a coherent
// lower-resolution tile — the property §3.3 requires ("the client can, at
// any time, render the partial set of data it has received").
func ProgressiveOrder(size int) []int {
	var order []int
	seen := make([]bool, size*size)
	add := func(idx int) {
		if !seen[idx] {
			seen[idx] = true
			order = append(order, idx)
		}
	}
	add(0)
	for n := 1; n < size; n *= 2 {
		// The three detail quadrants of level n: (0,n)-(n,2n), (n,0), (n,n).
		for r := 0; r < n; r++ {
			for c := n; c < 2*n; c++ {
				add(r*size + c)
			}
		}
		for r := n; r < 2*n; r++ {
			for c := 0; c < 2*n; c++ {
				add(r*size + c)
			}
		}
	}
	return order
}

// DecodePrefix reconstructs a tile from the first k progressive
// coefficients (the rest treated as zero).
func DecodePrefix(coeffs []float64, size, k int) ([]float64, error) {
	order := ProgressiveOrder(size)
	if k > len(order) {
		k = len(order)
	}
	partial := make([]float64, len(coeffs))
	for i := 0; i < k; i++ {
		partial[order[i]] = coeffs[order[i]]
	}
	return HaarDecode2D(partial, size)
}

// L2Error computes the root-mean-square error between two tiles.
func L2Error(a, b []float64) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

// PSNR computes peak signal-to-noise ratio in dB given the data range; a
// perfect reconstruction returns +Inf.
func PSNR(orig, approx []float64) float64 {
	lo, hi := orig[0], orig[0]
	for _, v := range orig {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	rmse := L2Error(orig, approx)
	if rmse == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(rng/rmse)
}
