package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestHaarRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	coeffs, err := HaarEncode2D(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := HaarDecode2D(coeffs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(back[i]-data[i]) > 1e-9 {
			t.Fatalf("round trip[%d] = %v, want %v", i, back[i], data[i])
		}
	}
}

// Property: Haar encode/decode is a perfect reconstruction for any 8×8 tile.
func TestHaarRoundTripProperty(t *testing.T) {
	f := func(vals [64]float64) bool {
		data := make([]float64, 64)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// keep magnitudes sane to avoid float cancellation noise
			data[i] = math.Mod(v, 1e6)
		}
		coeffs, err := HaarEncode2D(data, 8)
		if err != nil {
			return false
		}
		back, err := HaarDecode2D(coeffs, 8)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(back[i]-data[i]) > 1e-6*(1+math.Abs(data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHaarRejectsBadSizes(t *testing.T) {
	if _, err := HaarEncode2D(make([]float64, 9), 3); err == nil {
		t.Fatal("non-power-of-two size should error")
	}
	if _, err := HaarEncode2D(make([]float64, 10), 4); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := HaarDecode2D(make([]float64, 10), 4); err == nil {
		t.Fatal("decode length mismatch should error")
	}
}

func TestProgressiveOrderCoversAllOnce(t *testing.T) {
	for _, size := range []int{2, 4, 8, 16} {
		order := ProgressiveOrder(size)
		if len(order) != size*size {
			t.Fatalf("size %d: order covers %d of %d", size, len(order), size*size)
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("size %d: duplicate index %d", size, idx)
			}
			seen[idx] = true
		}
		if order[0] != 0 {
			t.Fatalf("approximation coefficient must come first, got %d", order[0])
		}
	}
}

func TestPrefixDecodeImprovesMonotonically(t *testing.T) {
	tiles, err := SyntheticTiles(1, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	tile := tiles[0]
	prevErr := math.Inf(1)
	for _, k := range []int{1, 4, 16, 64, 256} {
		approx, err := tile.Decode(k)
		if err != nil {
			t.Fatal(err)
		}
		e := L2Error(tile.Data, approx)
		if e > prevErr+1e-9 {
			t.Fatalf("error at k=%d (%v) worse than previous (%v)", k, e, prevErr)
		}
		prevErr = e
	}
	full, _ := tile.Decode(tile.Coefficients())
	if L2Error(tile.Data, full) > 1e-6 {
		t.Fatal("full prefix must reconstruct exactly")
	}
}

func TestUtilityCurveShape(t *testing.T) {
	tiles, _ := SyntheticTiles(1, 16, 1)
	tile := tiles[0]
	if tile.Utility(0) != 0 && tile.totalEnergy != 0 {
		t.Fatalf("utility(0) = %v", tile.Utility(0))
	}
	if tile.Utility(tile.Coefficients()) < 0.999 {
		t.Fatalf("utility(all) = %v", tile.Utility(tile.Coefficients()))
	}
	// monotone nondecreasing
	prev := 0.0
	for k := 0; k <= tile.Coefficients(); k += 8 {
		u := tile.Utility(k)
		if u < prev-1e-12 {
			t.Fatalf("utility decreased at k=%d", k)
		}
		prev = u
	}
	// progressive coarse-first ordering front-loads energy: the first
	// quarter of coefficients captures the majority of it for smooth tiles
	if tile.Utility(tile.Coefficients()/4) < 0.5 {
		t.Fatalf("first quarter captures only %v of energy", tile.Utility(tile.Coefficients()/4))
	}
}

func TestPSNR(t *testing.T) {
	a := []float64{0, 10, 20, 30}
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("identical signals should have infinite PSNR")
	}
	b := []float64{1, 11, 21, 31}
	p := PSNR(a, b)
	if p < 20 || p > 40 {
		t.Fatalf("psnr = %v", p)
	}
}

func TestIntentModelAccuracyInPaperBand(t *testing.T) {
	// Canonical operating point (see EXPERIMENTS.md): a 4×3 widget grid
	// with jitter σ=10px lands the model at the paper's number.
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	traces := workload.MouseTraces(600, widgets, 20, 10, 99)
	m := NewIntentModel(widgets)
	acc := m.Evaluate(traces)
	// §3.3: "the model is 82% accurate at predicting the widget that the
	// user will interact with in 200ms". Accept a band around it.
	if acc < 0.75 || acc > 0.90 {
		t.Fatalf("intent accuracy = %.3f, want within [0.75, 0.90] (paper: 0.82)", acc)
	}
}

func TestIntentModelUniformWithoutHistory(t *testing.T) {
	widgets := workload.WidgetGrid(2, 2, 400, 400)
	m := NewIntentModel(widgets)
	probs := m.Predict(nil)
	for _, p := range probs {
		if math.Abs(p-0.25) > 1e-9 {
			t.Fatalf("probs = %v, want uniform", probs)
		}
	}
	if Entropy(probs) < 1.99 {
		t.Fatalf("uniform entropy = %v, want 2 bits", Entropy(probs))
	}
}

func TestIntentModelSharpensTowardTarget(t *testing.T) {
	widgets := workload.WidgetGrid(2, 2, 400, 400)
	m := NewIntentModel(widgets)
	// straight run at widget 3's center
	cx, cy := widgets[3].Center()
	var pts []workload.MousePoint
	for i := 0; i <= 10; i++ {
		f := float64(i) / 10
		pts = append(pts, workload.MousePoint{T: int64(i * 20), X: f * cx, Y: f * cy})
	}
	probs := m.Predict(pts)
	if Top(probs) != 3 {
		t.Fatalf("top = %d, probs = %v", Top(probs), probs)
	}
	if probs[3] < 0.5 {
		t.Fatalf("target prob = %v, want dominant", probs[3])
	}
}

func TestGreedyBeatsAlternatives(t *testing.T) {
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	tiles, err := SyntheticTiles(len(widgets), 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	traces := workload.MouseTraces(60, widgets, 20, 5, 6)
	run := func(s Scheduler) SessionResult {
		res, err := RunSession(SessionParams{
			Widgets: widgets, Tiles: tiles, Traces: traces, Sched: s,
			BandwidthPerTick: 8, RenderableUtility: 0.99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	greedy := run(&GreedyUtility{})
	rr := run(RoundRobin{})
	none := run(NoPrefetch{})

	if greedy.MeanUtilityAtRequest <= rr.MeanUtilityAtRequest {
		t.Fatalf("greedy utility (%.3f) should beat round robin (%.3f)",
			greedy.MeanUtilityAtRequest, rr.MeanUtilityAtRequest)
	}
	// Round robin prefetches blindly but still beats pure
	// request-response (tiles persist across revisits, so even
	// request-response accumulates some quality).
	if rr.MeanUtilityAtRequest <= none.MeanUtilityAtRequest {
		t.Fatalf("round robin (%.3f) should beat request-response (%.3f)",
			rr.MeanUtilityAtRequest, none.MeanUtilityAtRequest)
	}
	if greedy.RenderableWithin100ms <= none.RenderableWithin100ms {
		t.Fatalf("greedy 100ms-renderable (%.2f) should beat request-response (%.2f)",
			greedy.RenderableWithin100ms, none.RenderableWithin100ms)
	}
	if greedy.MeanMsToRenderable >= none.MeanMsToRenderable {
		t.Fatalf("greedy time-to-renderable (%.0f ms) should beat request-response (%.0f ms)",
			greedy.MeanMsToRenderable, none.MeanMsToRenderable)
	}
}

func TestSessionValidation(t *testing.T) {
	widgets := workload.WidgetGrid(2, 2, 100, 100)
	tiles, _ := SyntheticTiles(1, 8, 1)
	if _, err := RunSession(SessionParams{Widgets: widgets, Tiles: tiles, Sched: RoundRobin{}}); err == nil {
		t.Fatal("mismatched widgets/tiles should error")
	}
}

func TestSchedulersRespectBudget(t *testing.T) {
	tiles, _ := SyntheticTiles(4, 16, 2)
	for _, s := range []Scheduler{&GreedyUtility{}, RoundRobin{}} {
		tr := NewTransfer(tiles)
		probs := []float64{0.7, 0.1, 0.1, 0.1}
		s.Allocate(tr, probs, 100)
		if got := sum(tr.Received); got != 100 {
			t.Fatalf("%s allocated %d, budget 100", s.Name(), got)
		}
		// repeated allocation saturates at full download
		total := 4 * tiles[0].Coefficients()
		for i := 0; i < 200; i++ {
			s.Allocate(tr, probs, 100)
		}
		if got := sum(tr.Received); got != total {
			t.Fatalf("%s saturated at %d, want %d", s.Name(), got, total)
		}
	}
}

func TestGreedyPrioritizesLikelyTile(t *testing.T) {
	tiles, _ := SyntheticTiles(3, 16, 3)
	tr := NewTransfer(tiles)
	g := &GreedyUtility{}
	g.Allocate(tr, []float64{0.9, 0.05, 0.05}, 64)
	if tr.Received[0] <= tr.Received[1] || tr.Received[0] <= tr.Received[2] {
		t.Fatalf("received = %v, tile 0 should dominate", tr.Received)
	}
}
