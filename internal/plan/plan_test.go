package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/relation"
)

type memCatalog map[string]*relation.Relation

func (m memCatalog) Resolve(name string, v relation.VersionRef) (*relation.Relation, error) {
	r, ok := m[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	return r, nil
}

func catalog() memCatalog {
	big := relation.New("Big", relation.NewSchema(
		relation.Col("id", relation.KindInt), relation.Col("k", relation.KindInt)))
	for i := 0; i < 100; i++ {
		big.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 7))})
	}
	small := relation.New("Small", relation.NewSchema(
		relation.Col("k", relation.KindInt), relation.Col("name", relation.KindString)))
	for i := 0; i < 7; i++ {
		small.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.String(fmt.Sprintf("g%d", i))})
	}
	return memCatalog{"big": big, "small": small}
}

func build(t *testing.T, sql string) Node {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, catalog())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildShapes(t *testing.T) {
	p := build(t, "SELECT id FROM Big WHERE id > 5 ORDER BY id DESC LIMIT 3")
	// Limit(Sort(Project(Filter(Scan))))
	if _, ok := p.(*Limit); !ok {
		t.Fatalf("root = %T", p)
	}
	text := Format(p)
	for _, frag := range []string{"Limit 3", "Sort", "Project", "Filter", "Scan Big"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("plan missing %q:\n%s", frag, text)
		}
	}
}

func TestBuildAggregate(t *testing.T) {
	p := build(t, "SELECT k, count(*) AS n FROM Big GROUP BY k HAVING count(*) > 2")
	if _, ok := p.(*Aggregate); !ok {
		t.Fatalf("root = %T (%s)", p, Format(p))
	}
	if p.Schema().Len() != 2 || p.Schema().Cols[1].Name != "n" {
		t.Fatalf("schema = %s", p.Schema())
	}
}

func TestBuildRejectsBadQueries(t *testing.T) {
	cases := []string{
		"SELECT id, count(*) FROM Big GROUP BY k",        // ungrouped output
		"SELECT k FROM Big WHERE count(*) > 1",           // aggregate in WHERE
		"SELECT nope FROM Missing",                       // unknown relation
		"SELECT id FROM Big UNION SELECT k, id FROM Big", // arity mismatch
	}
	for _, sql := range cases {
		q, err := parser.ParseQuery(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Build(q, catalog()); err == nil {
			t.Errorf("expected build error for %q", sql)
		}
	}
}

func TestOptimizePushdownAndJoinOrder(t *testing.T) {
	p := build(t, "SELECT B.id FROM Big AS B, Small AS S WHERE B.k = S.k AND B.id > 50 AND S.name != 'g0'")
	opt := Optimize(p, expr.NewRegistry())
	text := Format(opt)
	lines := strings.Split(text, "\n")
	joinLine := -1
	for i, l := range lines {
		if strings.Contains(l, "Join") {
			joinLine = i
		}
	}
	if joinLine < 0 {
		t.Fatalf("no join in optimized plan:\n%s", text)
	}
	// Single-side predicates must sit below the join.
	for i, l := range lines {
		if strings.Contains(l, "id > 50") || strings.Contains(l, "name") {
			if i < joinLine {
				t.Fatalf("predicate above join:\n%s", text)
			}
		}
	}
	// The smaller input (Small, 7 rows) becomes the left/build side.
	var scans []string
	for _, l := range lines {
		if strings.Contains(l, "Scan") {
			scans = append(scans, l)
		}
	}
	if len(scans) != 2 || !strings.Contains(scans[0], "Small") {
		t.Fatalf("join order not optimized:\n%s", text)
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	p := build(t, "SELECT id FROM Big WHERE id > 2 + 3")
	opt := Optimize(p, expr.NewRegistry())
	text := Format(opt)
	if !strings.Contains(text, "id > 5") {
		t.Fatalf("constant not folded:\n%s", text)
	}
	p2 := build(t, "SELECT id FROM Big WHERE 1 = 1")
	opt2 := Optimize(p2, expr.NewRegistry())
	if strings.Contains(Format(opt2), "Filter") {
		t.Fatalf("trivial filter kept:\n%s", Format(opt2))
	}
}

func TestOptimizeKeepsSubqueriesAboveJoin(t *testing.T) {
	// Predicates containing subqueries must not sink below joins: their
	// evaluation context is the full statement.
	p := build(t, "SELECT B.id FROM Big AS B, Small AS S WHERE B.k = S.k AND B.id > (SELECT min(k) FROM Small)")
	opt := Optimize(p, expr.NewRegistry())
	text := Format(opt)
	lines := strings.Split(text, "\n")
	joinLine, subLine := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "Join") && joinLine < 0 {
			joinLine = i
		}
		if strings.Contains(l, "SELECT ...") {
			subLine = i
		}
	}
	if subLine < 0 || joinLine < 0 || subLine > joinLine {
		t.Fatalf("subquery predicate sank below join:\n%s", text)
	}
}

func TestScanNames(t *testing.T) {
	p := build(t, "SELECT B.id FROM Big AS B, Small AS S WHERE B.k = S.k")
	names := ScanNames(p)
	if len(names) != 2 {
		t.Fatalf("scan names = %v", names)
	}
	set := map[string]bool{names[0]: true, names[1]: true}
	if !set["Big"] || !set["Small"] {
		t.Fatalf("scan names = %v", names)
	}
}

func TestSetOpPlan(t *testing.T) {
	p := build(t, "SELECT k FROM Big MINUS SELECT k FROM Small")
	s, ok := p.(*SetOp)
	if !ok || s.Kind != SetMinus {
		t.Fatalf("root = %T", p)
	}
	if !strings.Contains(s.String(), "Minus") {
		t.Fatalf("string = %s", s.String())
	}
}

func TestSubqueryAliasSchema(t *testing.T) {
	p := build(t, "SELECT t.k FROM (SELECT k FROM Small) AS t WHERE t.k > 1")
	sch := p.Schema()
	if sch.Len() != 1 || sch.Cols[0].Name != "k" {
		t.Fatalf("schema = %s", sch)
	}
}

func TestNodeStrings(t *testing.T) {
	p := build(t, "SELECT DISTINCT k FROM Big ORDER BY k LIMIT 2")
	text := Format(Optimize(p, expr.NewRegistry()))
	for _, frag := range []string{"Distinct", "Sort", "Limit"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("missing %q:\n%s", frag, text)
		}
	}
}
