package plan

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
)

// Optimize applies the offline optimizer's rule set (Fig 3) bottom-up:
//
//  1. constant folding inside predicates and projections,
//  2. removal of always-true filters (and empty-plan shortcut for
//     always-false filters is left to the executor),
//  3. predicate pushdown: filter conjuncts sink below joins to the side
//     that can evaluate them; cross-side conjuncts become join predicates,
//  4. join input ordering: the smaller estimated input becomes the hash
//     build side (left).
//
// funcs is needed to fold calls to pure builtins at plan time.
func Optimize(n Node, funcs *expr.Registry) Node {
	n = rewrite(n, func(x Node) Node { return foldNode(x, funcs) })
	n = rewrite(n, pushdown)
	n = rewrite(n, orderJoin)
	n = rewrite(n, dropTrivialFilter)
	return n
}

// rewrite applies fn bottom-up over the plan tree.
func rewrite(n Node, fn func(Node) Node) Node {
	switch t := n.(type) {
	case *Filter:
		t.Child = rewrite(t.Child, fn)
	case *Project:
		t.Child = rewrite(t.Child, fn)
	case *aliasProject:
		t.Child = rewrite(t.Child, fn)
	case *Join:
		t.L = rewrite(t.L, fn)
		t.R = rewrite(t.R, fn)
	case *Aggregate:
		t.Child = rewrite(t.Child, fn)
	case *Sort:
		t.Child = rewrite(t.Child, fn)
	case *Limit:
		t.Child = rewrite(t.Child, fn)
	case *Distinct:
		t.Child = rewrite(t.Child, fn)
	case *SetOp:
		t.L = rewrite(t.L, fn)
		t.R = rewrite(t.R, fn)
	}
	return fn(n)
}

// foldExpr replaces constant subexpressions with literals. Folding is
// best-effort: any evaluation error leaves the expression unchanged for the
// executor to report in row context.
func foldExpr(e expr.Expr, funcs *expr.Registry) expr.Expr {
	if e == nil {
		return nil
	}
	ctx := &expr.Context{Funcs: funcs}
	return expr.Transform(e, func(x Expr) Expr {
		switch x.(type) {
		case *expr.Lit, *expr.Column, *expr.Agg, *expr.Subquery:
			return x
		}
		if !expr.IsConstant(x) {
			return x
		}
		v, err := x.Eval(ctx)
		if err != nil {
			return x
		}
		return expr.Literal(v)
	})
}

// Expr aliases the expression interface for brevity in this file.
type Expr = expr.Expr

func foldNode(n Node, funcs *expr.Registry) Node {
	switch t := n.(type) {
	case *Filter:
		t.Pred = foldExpr(t.Pred, funcs)
	case *Project:
		for i := range t.Items {
			t.Items[i].Expr = foldExpr(t.Items[i].Expr, funcs)
		}
	case *Join:
		t.Pred = foldExpr(t.Pred, funcs)
	case *Aggregate:
		for i := range t.Items {
			t.Items[i].Expr = foldExpr(t.Items[i].Expr, funcs)
		}
		t.Having = foldExpr(t.Having, funcs)
	case *Sort:
		for i := range t.Keys {
			t.Keys[i].Expr = foldExpr(t.Keys[i].Expr, funcs)
		}
	}
	return n
}

// dropTrivialFilter removes filters whose predicate folded to constant true.
func dropTrivialFilter(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	if lit, ok := f.Pred.(*expr.Lit); ok && !lit.V.IsNull() && lit.V.Truthy() {
		return f.Child
	}
	return n
}

// pushdown sinks filter conjuncts below a join when all their column
// references bind on one side; conjuncts spanning both sides become the
// join's predicate (enabling hash joins in the executor).
func pushdown(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	j, ok := f.Child.(*Join)
	if !ok {
		return n
	}
	var leftPreds, rightPreds, joinPreds []expr.Expr
	for _, c := range expr.Conjuncts(f.Pred) {
		switch {
		case bindsWithin(c, j.L.Schema()):
			leftPreds = append(leftPreds, c)
		case bindsWithin(c, j.R.Schema()):
			rightPreds = append(rightPreds, c)
		default:
			joinPreds = append(joinPreds, c)
		}
	}
	if len(leftPreds) == 0 && len(rightPreds) == 0 && j.Pred == nil && len(joinPreds) == len(expr.Conjuncts(f.Pred)) {
		// Nothing sinks; still move the predicate into the join so the
		// executor can extract equi-keys.
		j.Pred = expr.AndAll(append([]expr.Expr{j.Pred}, joinPreds...))
		return j
	}
	l := j.L
	if len(leftPreds) > 0 {
		l = pushdown(&Filter{Child: l, Pred: expr.AndAll(leftPreds)})
	}
	r := j.R
	if len(rightPreds) > 0 {
		r = pushdown(&Filter{Child: r, Pred: expr.AndAll(rightPreds)})
	}
	newJoin := &Join{L: l, R: r, Pred: expr.AndAll(append([]expr.Expr{j.Pred}, joinPreds...))}
	return newJoin
}

// bindsWithin reports whether every column referenced by e resolves in the
// schema. Subquery-bearing predicates never sink (their evaluation context
// is the whole statement).
func bindsWithin(e expr.Expr, s relation.Schema) bool {
	ok := true
	expr.Walk(e, func(x expr.Expr) bool {
		switch c := x.(type) {
		case *expr.Subquery:
			ok = false
			return false
		case *expr.In:
			if _, resolved := c.Source.(*expr.SetSource); !resolved {
				// IN over a relation/subquery is resolved at exec time
				// against the full statement; keep it above the join.
				ok = false
				return false
			}
		case *expr.Column:
			if _, err := s.IndexErr(c.Qualifier, c.Name); err != nil {
				ok = false
				return false
			}
		}
		return ok
	})
	return ok
}

// orderJoin puts the smaller estimated input on the left (the executor's
// hash build side). Only plain scans and filtered scans are estimated; other
// shapes keep their order.
func orderJoin(n Node) Node {
	j, ok := n.(*Join)
	if !ok {
		return n
	}
	le, lok := estimate(j.L)
	re, rok := estimate(j.R)
	if lok && rok && re < le && symmetricPred(j.Pred) {
		j.L, j.R = j.R, j.L
	}
	return j
}

// estimate guesses input cardinality from scan estimates; filters halve it.
func estimate(n Node) (int, bool) {
	switch t := n.(type) {
	case *Scan:
		return t.EstRows, true
	case *Filter:
		e, ok := estimate(t.Child)
		return e / 2, ok
	default:
		return 0, false
	}
}

// symmetricPred reports whether swapping join inputs preserves the
// predicate's meaning; true for nil and for pure conjunctions of
// commutative comparisons (we keep it conservative: only swap when every
// conjunct is an equality or the predicate is nil).
func symmetricPred(p expr.Expr) bool {
	if p == nil {
		return true
	}
	for _, c := range expr.Conjuncts(p) {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			return false
		}
	}
	return true
}

// ScanNames collects the distinct relation names read by the plan, used by
// the engine to build the view dependency graph.
func ScanNames(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var rec func(Node)
	rec = func(n Node) {
		if s, ok := n.(*Scan); ok && s.Name != "" {
			key := strings.ToLower(s.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, s.Name)
			}
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(n)
	return out
}
