package plan

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func TestDeltaSafety(t *testing.T) {
	cases := []struct {
		sql    string
		safe   bool
		reason string // substring of the expected reason when unsafe
	}{
		{sql: "SELECT id, k FROM Big WHERE k > 2", safe: true},
		{sql: "SELECT b.id, s.name FROM Big AS b, Small AS s WHERE b.k = s.k", safe: true},
		{sql: "SELECT k, count(*) AS n, sum(id) AS s FROM Big GROUP BY k", safe: true},
		{sql: "SELECT DISTINCT k FROM Big", safe: true},
		{sql: "SELECT k FROM Big UNION SELECT k FROM Small", safe: true},
		{sql: "SELECT k FROM Big UNION ALL SELECT k FROM Small", safe: true},
		{sql: "SELECT k FROM Big MINUS SELECT k FROM Small", safe: true},
		{sql: "SELECT k FROM Big INTERSECT SELECT k FROM Small", safe: true},
		{sql: "SELECT k, count(*) AS n FROM Big GROUP BY k HAVING count(*) > 3", safe: true},

		{sql: "SELECT id FROM Big ORDER BY id", safe: true},
		{sql: "SELECT id, k FROM Big ORDER BY k DESC, id LIMIT 3", safe: true},
		{sql: "SELECT k, sum(id) AS s FROM Big GROUP BY k ORDER BY s DESC LIMIT 2", safe: true},
		// A bare LIMIT pins its prefix to the deterministic full-tuple order.
		{sql: "SELECT id FROM Big LIMIT 3", safe: true},

		{sql: "SELECT id FROM Big ORDER BY (SELECT max(k) FROM Small) LIMIT 3", safe: false, reason: "resolution"},
		{sql: "SELECT id FROM Big@vnow-1", safe: false, reason: "version history"},
		{sql: "SELECT id FROM Big@tnow-1", safe: false, reason: "version history"},
		{sql: "SELECT id FROM Big WHERE k = (SELECT max(k) FROM Small)", safe: false, reason: "resolution"},
		{sql: "SELECT id FROM Big WHERE k IN Small", safe: false, reason: "resolution"},
	}
	for _, tc := range cases {
		n := build(t, tc.sql)
		ok, why := DeltaSafety(n)
		if ok != tc.safe {
			t.Errorf("DeltaSafety(%q) = %v (%s), want %v", tc.sql, ok, why, tc.safe)
			continue
		}
		if !ok && !strings.Contains(why, tc.reason) {
			t.Errorf("DeltaSafety(%q) reason = %q, want substring %q", tc.sql, why, tc.reason)
		}
	}
}

func TestDeltaSafetySurvivesOptimize(t *testing.T) {
	for _, sql := range []string{
		"SELECT b.id, s.name FROM Big AS b, Small AS s WHERE b.k = s.k AND b.id > 10",
		"SELECT k, sum(id) AS s FROM Big WHERE id < 50 GROUP BY k",
	} {
		n := Optimize(build(t, sql), expr.NewRegistry())
		if ok, why := DeltaSafety(n); !ok {
			t.Errorf("optimized %q not delta-safe: %s", sql, why)
		}
	}
}
