// Delta-safety analysis. A plan is delta-safe when every operator admits an
// incremental evaluation rule: given a delta (inserted/deleted multiset) on
// each input, the operator can produce the exact output delta from its
// retained state without re-reading the inputs. The executor builds a
// stateful pipeline only for safe plans; everything else falls back to full
// recomputation (which stays the parity oracle).
package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
)

// DeltaSafety reports whether the plan admits incremental delta propagation
// and, when it does not, the first reason found. Unsafe shapes:
//
//   - scans of version history (@vnow-i with i ≥ 1, any @tnow-j): the scanned
//     snapshot advances even when the live relation's delta is empty;
//   - expressions needing per-run resolution (scalar subqueries, IN over a
//     relation): their value can change with relations the operator never
//     sees a delta for;
//   - aggregates whose output expressions read columns that are not grouping
//     keys: those read the group's "representative" row, which full
//     recomputation re-picks but a delta pipeline cannot.
//
// ORDER BY — with or without LIMIT — is safe over safe children: the
// executor maintains an order-statistic tree with deterministic full-tuple
// tie-breaking, so the sorted output and the top-k prefix both have exact
// delta rules. A bare LIMIT (no ORDER BY) is safe the same way: the
// executor pins its prefix to the deterministic full-tuple order (an
// ordstat tree with zero sort keys), which bag deltas maintain exactly.
func DeltaSafety(n Node) (bool, string) {
	switch t := n.(type) {
	case *Scan:
		if t.Name == "" {
			return true, "" // constant single-row scan
		}
		live := t.Version.Kind == relation.VersionCurrent ||
			(t.Version.Kind == relation.VersionVNow && t.Version.Offset == 0)
		if !live {
			return false, fmt.Sprintf("scan %s%s reads version history", t.Name, t.Version)
		}
		return true, ""
	case *Filter:
		if expr.NeedsResolution(t.Pred) {
			return false, "filter predicate needs per-run subquery/IN resolution"
		}
		return DeltaSafety(t.Child)
	case *Project:
		return projectSafety(t)
	case *aliasProject:
		return projectSafety(&t.Project)
	case *Join:
		if t.Pred != nil && expr.NeedsResolution(t.Pred) {
			return false, "join predicate needs per-run subquery/IN resolution"
		}
		if ok, why := DeltaSafety(t.L); !ok {
			return false, why
		}
		return DeltaSafety(t.R)
	case *Aggregate:
		return aggregateSafety(t)
	case *Distinct:
		return DeltaSafety(t.Child)
	case *SetOp:
		if t.L.Schema().Len() != t.R.Schema().Len() {
			return false, "set operands are not union compatible"
		}
		if ok, why := DeltaSafety(t.L); !ok {
			return false, why
		}
		return DeltaSafety(t.R)
	case *Sort:
		return sortSafety(t)
	case *Limit:
		// Over an ORDER BY, the maintained total order makes the k-prefix
		// (and therefore its delta) exact. A bare LIMIT gets the same
		// treatment over the deterministic full-tuple order.
		if s, ok := t.Child.(*Sort); ok {
			return sortSafety(s)
		}
		return DeltaSafety(t.Child)
	default:
		return false, fmt.Sprintf("plan node %T has no delta rule", n)
	}
}

func sortSafety(s *Sort) (bool, string) {
	for _, k := range s.Keys {
		if expr.NeedsResolution(k.Expr) {
			return false, "sort key needs per-run subquery/IN resolution"
		}
	}
	return DeltaSafety(s.Child)
}

func projectSafety(p *Project) (bool, string) {
	for _, it := range p.Items {
		if expr.NeedsResolution(it.Expr) {
			return false, "projection needs per-run subquery/IN resolution"
		}
	}
	return DeltaSafety(p.Child)
}

func aggregateSafety(a *Aggregate) (bool, string) {
	for _, g := range a.GroupBy {
		if expr.NeedsResolution(g) {
			return false, "group-by key needs per-run subquery/IN resolution"
		}
	}
	for _, it := range a.Items {
		if expr.NeedsResolution(it.Expr) {
			return false, "aggregate output needs per-run subquery/IN resolution"
		}
	}
	if a.Having != nil && expr.NeedsResolution(a.Having) {
		return false, "HAVING needs per-run subquery/IN resolution"
	}
	// Representative-row rule: outside aggregate arguments, output and
	// HAVING expressions may only read columns that are themselves grouping
	// keys — those are constant across the group, so any retained
	// representative row is as good as the one a recompute would pick.
	groupCols := map[string]bool{}
	for _, g := range a.GroupBy {
		if c, ok := g.(*expr.Column); ok {
			groupCols[colKey(c)] = true
		}
	}
	check := func(e expr.Expr) (bool, string) {
		ok, offender := true, ""
		expr.Walk(e, func(x expr.Expr) bool {
			switch c := x.(type) {
			case *expr.Agg:
				return false // argument columns are maintained per delta row
			case *expr.Column:
				if !groupCols[colKey(c)] {
					ok, offender = false, c.String()
					return false
				}
			}
			return ok
		})
		return ok, offender
	}
	for _, it := range a.Items {
		if ok, col := check(it.Expr); !ok {
			return false, fmt.Sprintf("aggregate output reads non-grouping column %s", col)
		}
	}
	if a.Having != nil {
		if ok, col := check(a.Having); !ok {
			return false, fmt.Sprintf("HAVING reads non-grouping column %s", col)
		}
	}
	return DeltaSafety(a.Child)
}

func colKey(c *expr.Column) string {
	return strings.ToLower(c.Qualifier) + "\x00" + strings.ToLower(c.Name)
}
