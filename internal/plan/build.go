package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/relation"
)

// Build converts a parsed query into a logical plan. The catalog is consulted
// for input schemas and row-count estimates; row contents are read later, at
// execution time, so a plan stays valid as data changes.
func Build(q parser.QueryExpr, cat Catalog) (Node, error) {
	switch n := q.(type) {
	case *parser.SelectStmt:
		return buildSelect(n, cat)
	case *parser.SetOp:
		l, err := Build(n.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := Build(n.R, cat)
		if err != nil {
			return nil, err
		}
		if !l.Schema().UnionCompatible(r.Schema()) {
			return nil, fmt.Errorf("%s operands are not union compatible: %s vs %s",
				n.Op, l.Schema(), r.Schema())
		}
		var kind SetKind
		switch n.Op {
		case parser.SetUnion:
			kind = SetUnion
		case parser.SetMinus:
			kind = SetMinus
		default:
			kind = SetIntersect
		}
		return &SetOp{Kind: kind, All: n.All, L: l, R: r}, nil
	case *parser.RelRefQuery:
		return buildScan(n.Ref, cat)
	case *parser.RenderStmt:
		// render() is handled by the engine; plan the inner query.
		return Build(n.Inner, cat)
	default:
		return nil, fmt.Errorf("cannot plan query of type %T", q)
	}
}

func buildScan(ref parser.TableRef, cat Catalog) (Node, error) {
	if ref.Sub != nil {
		sub, err := Build(ref.Sub, cat)
		if err != nil {
			return nil, err
		}
		return aliasNode(sub, ref.Alias), nil
	}
	rel, err := cat.Resolve(ref.Name, ref.Version)
	if err != nil {
		return nil, err
	}
	return &Scan{
		Name:    ref.Name,
		Alias:   ref.BindName(),
		Version: ref.Version,
		Sch:     rel.Schema.Qualify(ref.BindName()),
		EstRows: rel.Len(),
	}, nil
}

// aliasNode re-qualifies a subquery's output columns under the FROM alias.
func aliasNode(child Node, alias string) Node {
	items := make([]ProjItem, child.Schema().Len())
	for i, c := range child.Schema().Cols {
		items[i] = ProjItem{
			Expr: &expr.Column{Qualifier: c.Qualifier, Name: c.Name},
			Name: c.Name,
		}
	}
	return &aliasProject{Project: Project{Child: child, Items: items}, alias: alias}
}

// aliasProject is a Project whose output schema is qualified by the subquery
// alias rather than unqualified.
type aliasProject struct {
	Project
	alias string
}

// Schema qualifies the projected columns under the alias.
func (a *aliasProject) Schema() relation.Schema {
	return a.Project.Schema().Qualify(a.alias)
}

// AsProject exposes the embedded projection to the executor, which runs it
// with this node's qualified output schema.
func (a *aliasProject) AsProject() *Project { return &a.Project }

func buildSelect(sel *parser.SelectStmt, cat Catalog) (Node, error) {
	// FROM: left-deep cross joins; the optimizer turns filters into join
	// predicates and reorders inputs.
	var root Node
	for _, ref := range sel.From {
		n, err := buildScan(ref, cat)
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = n
		} else {
			root = &Join{L: root, R: n}
		}
	}
	if root == nil {
		root = &Scan{Name: "", Alias: "", Sch: relation.Schema{}, EstRows: 1} // constant SELECT
	}
	if sel.Where != nil {
		if expr.HasAggregate(sel.Where) {
			return nil, fmt.Errorf("aggregates are not allowed in WHERE")
		}
		root = &Filter{Child: root, Pred: sel.Where}
	}

	items, err := expandItems(sel.Items, root.Schema())
	if err != nil {
		return nil, err
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if expr.HasAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		if err := checkGrouping(items, sel.GroupBy); err != nil {
			return nil, err
		}
		root = &Aggregate{Child: root, GroupBy: sel.GroupBy, Items: items, Having: sel.Having}
	} else {
		root = &Project{Child: root, Items: items}
	}
	if sel.Distinct {
		root = &Distinct{Child: root}
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			keys[i] = SortKey{Expr: resolveOrderRef(o.Expr, items), Desc: o.Desc}
		}
		root = &Sort{Child: root, Keys: keys}
	}
	if sel.Limit >= 0 {
		root = &Limit{Child: root, N: sel.Limit}
	}
	return root, nil
}

// expandItems resolves * and qualified stars against the input schema and
// names every output column.
func expandItems(items []parser.SelectItem, in relation.Schema) ([]ProjItem, error) {
	var out []ProjItem
	for _, it := range items {
		if !it.Star {
			out = append(out, ProjItem{Expr: it.Expr, Name: it.OutName()})
			continue
		}
		matched := false
		for _, c := range in.Cols {
			if it.StarQualifier != "" && !strings.EqualFold(c.Qualifier, it.StarQualifier) {
				continue
			}
			matched = true
			out = append(out, ProjItem{
				Expr: &expr.Column{Qualifier: c.Qualifier, Name: c.Name},
				Name: c.Name,
			})
		}
		if !matched {
			return nil, fmt.Errorf("star qualifier %q matches no input", it.StarQualifier)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty projection")
	}
	return out, nil
}

// checkGrouping enforces that non-aggregate output expressions appear in the
// GROUP BY list (matching by rendered form), unless there is no GROUP BY at
// all (a global aggregate, where bare columns take SQLite's
// first-row-of-group semantics).
func checkGrouping(items []ProjItem, groupBy []expr.Expr) error {
	if len(groupBy) == 0 {
		return nil
	}
	keys := make(map[string]bool, len(groupBy))
	for _, g := range groupBy {
		keys[g.String()] = true
	}
	for _, it := range items {
		if expr.HasAggregate(it.Expr) {
			continue
		}
		if keys[it.Expr.String()] {
			continue
		}
		// A bare column that names a group key by alias is also fine.
		if keys[it.Name] {
			continue
		}
		return fmt.Errorf("output %q is neither aggregated nor in GROUP BY", it.Expr.String())
	}
	return nil
}

// resolveOrderRef lets ORDER BY reference projected aliases ("ORDER BY
// total") by rewriting the bare column to the projected expression's output
// column.
func resolveOrderRef(e expr.Expr, items []ProjItem) expr.Expr {
	c, ok := e.(*expr.Column)
	if !ok || c.Qualifier != "" {
		return e
	}
	for _, it := range items {
		if strings.EqualFold(it.Name, c.Name) {
			return &expr.Column{Name: it.Name}
		}
	}
	return e
}
