package plan

// Cube eligibility analysis: CubeCandidate must spot the Aggregate-over-Join
// shape anywhere in a plan, and CubeEligibility must accept exactly the
// decomposable shapes (COUNT/SUM/AVG over a pure equi-join with one-sided
// grouping) and name the first blocker for everything else.

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

// optAgg builds, optimizes (pushing the WHERE equi-join into the Join node,
// as the executor sees it), and returns the plan plus its Aggregate.
func optAgg(t *testing.T, sql string) (Node, *Aggregate) {
	t.Helper()
	p := build(t, sql)
	p = Optimize(p, expr.NewRegistry())
	return p, findAgg(p)
}

func findAgg(n Node) *Aggregate {
	switch t := n.(type) {
	case *Aggregate:
		return t
	case *Project:
		return findAgg(t.Child)
	case *aliasProject:
		return findAgg(t.Child)
	case *Filter:
		return findAgg(t.Child)
	case *Sort:
		return findAgg(t.Child)
	case *Limit:
		return findAgg(t.Child)
	case *Distinct:
		return findAgg(t.Child)
	default:
		return nil
	}
}

func TestCubeCandidate(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT b.k AS k, count(*) AS n FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k", true},
		// The shape counts even under ORDER BY / LIMIT decoration.
		{"SELECT b.k AS k, count(*) AS n FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k ORDER BY n DESC LIMIT 3", true},
		// Aggregate without a join underneath is not a candidate.
		{"SELECT k, count(*) AS n FROM Big GROUP BY k", false},
		// No aggregate at all.
		{"SELECT b.id FROM Big AS b, Small AS s WHERE b.k = s.k", false},
	}
	for _, c := range cases {
		p, _ := optAgg(t, c.sql)
		if got := CubeCandidate(p); got != c.want {
			t.Errorf("CubeCandidate(%q) = %t, want %t", c.sql, got, c.want)
		}
	}
}

func TestCubeEligibility(t *testing.T) {
	cases := []struct {
		name    string
		sql     string
		ok      bool
		factCol string // qualified column the fact side must carry when ok
		reason  string // substring of the blocking reason when !ok
	}{
		{
			name:    "fact-is-big",
			sql:     "SELECT b.k AS k, count(*) AS n, sum(b.id) AS total, avg(b.id) AS mean FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k",
			ok:      true,
			factCol: "b.id",
		},
		{
			name:    "fact-is-small",
			sql:     "SELECT s.name AS name, count(*) AS n FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY s.name",
			ok:      true,
			factCol: "s.name",
		},
		{
			name:    "global-aggregate",
			sql:     "SELECT count(*) AS n, sum(b.id) AS total FROM Big AS b, Small AS s WHERE b.k = s.k",
			ok:      true,
			factCol: "b.id",
		},
		{
			name:   "not-a-join",
			sql:    "SELECT k, count(*) AS n FROM Big GROUP BY k",
			reason: "not a join",
		},
		{
			name:   "no-equi-key",
			sql:    "SELECT b.k AS k, count(*) AS n FROM Big AS b, Small AS s WHERE b.k < s.k GROUP BY b.k",
			reason: "no equi-join key",
		},
		{
			name:   "residual-predicate",
			sql:    "SELECT b.k AS k, count(*) AS n FROM Big AS b, Small AS s WHERE b.k = s.k AND b.id > s.k GROUP BY b.k",
			reason: "not a pure equi-join",
		},
		{
			name:   "min-not-decomposable",
			sql:    "SELECT b.k AS k, min(b.id) AS m FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k",
			reason: "not decomposable",
		},
		{
			name:   "distinct-not-decomposable",
			sql:    "SELECT b.k AS k, count(DISTINCT b.id) AS m FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k",
			reason: "DISTINCT",
		},
		{
			name:   "groups-read-both-sides",
			sql:    "SELECT b.k AS k, s.name AS name, count(*) AS n FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k, s.name",
			reason: "both join sides",
		},
		{
			name:   "subquery-parameterized",
			sql:    "SELECT b.k AS k, count(*) + (SELECT count(*) FROM Small) AS n FROM Big AS b, Small AS s WHERE b.k = s.k GROUP BY b.k",
			reason: "per-run resolution",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, a := optAgg(t, c.sql)
			if a == nil {
				t.Fatalf("no Aggregate node in optimized plan for %q", c.sql)
			}
			info := CubeEligibility(a)
			if info.OK != c.ok {
				t.Fatalf("OK = %t, want %t (reason %q)", info.OK, c.ok, info.Reason)
			}
			if c.ok {
				// The optimizer may reorder the join, so FactLeft is checked
				// against which side actually carries the fact columns.
				j, isJoin := a.Child.(*Join)
				if !isJoin {
					t.Fatalf("eligible aggregate's child is %T, not a join", a.Child)
				}
				side := j.R
				if info.FactLeft {
					side = j.L
				}
				parts := strings.SplitN(c.factCol, ".", 2)
				if _, err := side.Schema().IndexErr(parts[0], parts[1]); err != nil {
					t.Fatalf("fact side (FactLeft=%t) does not carry %s: %v", info.FactLeft, c.factCol, err)
				}
				return
			}
			if !strings.Contains(info.Reason, c.reason) {
				t.Fatalf("reason %q does not mention %q", info.Reason, c.reason)
			}
		})
	}
}
