// Package plan builds logical query plans from DeVIL ASTs and applies the
// rule-based rewrites of the paper's offline optimizer (Fig 3): constant
// folding, predicate pushdown through joins, and join-input ordering.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/relation"
)

// Catalog resolves relation names (at a version) to their current contents.
// The engine's storage manager implements it; tests use in-memory maps.
type Catalog interface {
	Resolve(name string, v relation.VersionRef) (*relation.Relation, error)
}

// Node is a logical plan operator.
type Node interface {
	// Schema is the operator's output schema, with qualifiers where rows
	// are still bound to named inputs.
	Schema() relation.Schema
	// Children returns input operators, left to right.
	Children() []Node
	// String renders one plan line (children not included).
	String() string
}

// Scan reads a named relation, optionally at a past version, binding its
// columns under Alias.
type Scan struct {
	Name    string
	Alias   string
	Version relation.VersionRef
	Sch     relation.Schema
	// EstRows is the catalog's row count at plan time; the optimizer uses
	// it to order join inputs.
	EstRows int
}

// Schema returns the scan's qualified schema.
func (s *Scan) Schema() relation.Schema { return s.Sch }

// Children returns nil; scans are leaves.
func (s *Scan) Children() []Node { return nil }

// String renders "Scan rel@version AS alias".
func (s *Scan) String() string {
	out := "Scan " + s.Name + s.Version.String()
	if s.Alias != "" && s.Alias != s.Name {
		out += " AS " + s.Alias
	}
	return fmt.Sprintf("%s (~%d rows)", out, s.EstRows)
}

// Filter keeps rows whose predicate is truthy.
type Filter struct {
	Child Node
	Pred  expr.Expr
}

// Schema passes the child schema through.
func (f *Filter) Schema() relation.Schema { return f.Child.Schema() }

// Children returns the single input.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// String renders the predicate.
func (f *Filter) String() string { return "Filter " + f.Pred.String() }

// ProjItem is one output column of a projection or aggregation.
type ProjItem struct {
	Expr expr.Expr
	Name string
}

// Project computes output columns; the output schema is unqualified.
type Project struct {
	Child Node
	Items []ProjItem
}

// Schema derives unqualified output columns from the items.
func (p *Project) Schema() relation.Schema {
	cols := make([]relation.Column, len(p.Items))
	for i, it := range p.Items {
		cols[i] = relation.Col(it.Name, relation.KindNull)
	}
	return relation.NewSchema(cols...)
}

// Children returns the single input.
func (p *Project) Children() []Node { return []Node{p.Child} }

// String lists the projected expressions.
func (p *Project) String() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.Expr.String() + " AS " + it.Name
	}
	return "Project " + strings.Join(parts, ", ")
}

// Join combines two inputs; Pred may be nil (cross product). The executor
// extracts equi-conjuncts from Pred to run a hash join.
type Join struct {
	L, R Node
	Pred expr.Expr
}

// Schema concatenates the input schemas.
func (j *Join) Schema() relation.Schema { return j.L.Schema().Concat(j.R.Schema()) }

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// String renders the join predicate if any.
func (j *Join) String() string {
	if j.Pred == nil {
		return "CrossJoin"
	}
	return "Join ON " + j.Pred.String()
}

// Aggregate groups rows by GroupBy expressions and computes Items, which may
// contain aggregate calls; Having filters groups.
type Aggregate struct {
	Child   Node
	GroupBy []expr.Expr
	Items   []ProjItem
	Having  expr.Expr
}

// Schema derives unqualified output columns from the items.
func (a *Aggregate) Schema() relation.Schema {
	cols := make([]relation.Column, len(a.Items))
	for i, it := range a.Items {
		cols[i] = relation.Col(it.Name, relation.KindNull)
	}
	return relation.NewSchema(cols...)
}

// Children returns the single input.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// String renders group keys and outputs.
func (a *Aggregate) String() string {
	keys := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		keys[i] = g.String()
	}
	return fmt.Sprintf("Aggregate by [%s] -> %d items", strings.Join(keys, ", "), len(a.Items))
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders rows by keys.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema passes the child schema through.
func (s *Sort) Schema() relation.Schema { return s.Child.Schema() }

// Children returns the single input.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// String renders the sort keys.
func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit keeps the first N rows.
type Limit struct {
	Child Node
	N     int
}

// Schema passes the child schema through.
func (l *Limit) Schema() relation.Schema { return l.Child.Schema() }

// Children returns the single input.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// String renders the limit count.
func (l *Limit) String() string { return fmt.Sprintf("Limit %d", l.N) }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

// Schema passes the child schema through.
func (d *Distinct) Schema() relation.Schema { return d.Child.Schema() }

// Children returns the single input.
func (d *Distinct) Children() []Node { return []Node{d.Child} }

// String names the operator.
func (d *Distinct) String() string { return "Distinct" }

// SetKind enumerates set operators at the plan level.
type SetKind uint8

// Plan-level set operations.
const (
	SetUnion SetKind = iota
	SetMinus
	SetIntersect
)

// SetOp combines two union-compatible inputs.
type SetOp struct {
	Kind SetKind
	All  bool
	L, R Node
}

// Schema is the left input's schema (names from the left branch, as in SQL).
func (s *SetOp) Schema() relation.Schema { return s.L.Schema() }

// Children returns both inputs.
func (s *SetOp) Children() []Node { return []Node{s.L, s.R} }

// String names the operation.
func (s *SetOp) String() string {
	switch s.Kind {
	case SetUnion:
		if s.All {
			return "UnionAll"
		}
		return "Union"
	case SetMinus:
		return "Minus"
	default:
		return "Intersect"
	}
}

// Format renders the whole plan tree indented, for EXPLAIN-style output.
func Format(n Node) string {
	var b strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
