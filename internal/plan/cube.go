// Data-cube eligibility analysis. The executor can answer brush moves over a
// join-based crossfilter view in O(bins) instead of O(rows) by materializing
// per-chart index tiles: partial aggregates keyed by (brush-bin, output-bin),
// where the brush bin is the join key on the data ("fact") side and the
// output bin is the view's GROUP BY key. A selection change then rescales the
// tiles instead of re-streaming joined rows. The shape that admits tiles is
// narrow and checked here, alongside DeltaSafety:
//
//   - the aggregate sits directly over an equi-join with no residual
//     predicate (each selection row contributes a pure multiplicity per bin);
//   - every aggregate call is decomposable over bins: COUNT and SUM partials
//     add across bins, and AVG decomposes into SUM/COUNT. MIN/MAX and
//     DISTINCT do not (a bin partial cannot be scaled by a multiplicity or
//     subtracted), and fall back to the ordinary delta pipeline;
//   - the grouping keys and aggregate arguments all read one join side (the
//     fact side); the other side only selects which bins are active;
//   - nothing needs per-run subquery/IN resolution (subquery-parameterized
//     views recompute per event and cannot be tiled).
package plan

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/relation"
)

// CubeInfo is the result of CubeEligibility: whether an Aggregate-over-Join
// admits index tiles, which join side carries the data if so, and the first
// blocking reason if not.
type CubeInfo struct {
	OK       bool
	FactLeft bool   // grouping keys and aggregate arguments read the left side
	Reason   string // first disqualifier when !OK
}

// CubeCandidate reports whether the plan contains the shape the cube
// subsystem targets at all — an Aggregate directly over a Join. The engine
// counts a fallback when a candidate view compiles without a cube path
// (CubeEligibility rejected it), mirroring the bare-LIMIT warning.
func CubeCandidate(n Node) bool {
	switch t := n.(type) {
	case *Aggregate:
		if _, ok := t.Child.(*Join); ok {
			return true
		}
		return CubeCandidate(t.Child)
	case *Filter:
		return CubeCandidate(t.Child)
	case *Project:
		return CubeCandidate(t.Child)
	case *aliasProject:
		return CubeCandidate(t.Child)
	case *Join:
		return CubeCandidate(t.L) || CubeCandidate(t.R)
	case *Distinct:
		return CubeCandidate(t.Child)
	case *Sort:
		return CubeCandidate(t.Child)
	case *Limit:
		return CubeCandidate(t.Child)
	case *SetOp:
		return CubeCandidate(t.L) || CubeCandidate(t.R)
	default:
		return false
	}
}

// decomposableAggs is the set of aggregate calls whose per-bin partials
// compose under weighted addition (AVG via its SUM/COUNT decomposition).
var decomposableAggs = map[string]bool{"count": true, "sum": true, "avg": true}

// CubeEligibility analyzes one Aggregate for the index-tile rewrite. It is
// conservative: any shape it cannot prove decomposable is rejected with a
// reason, and the executor falls back to the ordinary delta pipeline.
func CubeEligibility(a *Aggregate) CubeInfo {
	no := func(format string, args ...any) CubeInfo {
		return CubeInfo{Reason: fmt.Sprintf(format, args...)}
	}
	j, ok := a.Child.(*Join)
	if !ok {
		return no("aggregate input is not a join")
	}
	ls, rs := j.L.Schema(), j.R.Schema()
	leftKeys, _, residual := splitCubeEquiJoin(j.Pred, ls, rs)
	if len(leftKeys) == 0 {
		return no("join has no equi-join key to bin on")
	}
	if residual != nil {
		return no("join predicate %s is not a pure equi-join", residual)
	}
	// Per-run resolution anywhere in the aggregate means the view is
	// subquery-parameterized: its value can change with relations the tiles
	// never see a delta for.
	for _, g := range a.GroupBy {
		if expr.NeedsResolution(g) {
			return no("group-by key %s needs per-run resolution", g)
		}
	}
	var aggs []*expr.Agg
	for _, it := range a.Items {
		if expr.NeedsResolution(it.Expr) {
			return no("aggregate output %s needs per-run resolution", it.Expr)
		}
		aggs = append(aggs, expr.Aggregates(it.Expr)...)
	}
	if a.Having != nil {
		if expr.NeedsResolution(a.Having) {
			return no("HAVING needs per-run resolution")
		}
		aggs = append(aggs, expr.Aggregates(a.Having)...)
	}
	var args []expr.Expr
	for _, ag := range aggs {
		if ag.Distinct {
			return no("aggregate %s is not decomposable over bins (DISTINCT)", ag)
		}
		if !decomposableAggs[ag.Name] {
			return no("aggregate %s is not decomposable over bins", ag)
		}
		if ag.Arg != nil {
			args = append(args, ag.Arg)
		}
	}
	// Fact side: the side that carries every grouping key and aggregate
	// argument. The other side contributes only bin multiplicities.
	factExprs := append(append([]expr.Expr{}, a.GroupBy...), args...)
	switch {
	case exprsBindIn(factExprs, ls):
		return CubeInfo{OK: true, FactLeft: true}
	case exprsBindIn(factExprs, rs):
		return CubeInfo{OK: true, FactLeft: false}
	default:
		return no("grouping keys and aggregate arguments read both join sides")
	}
}

// splitCubeEquiJoin mirrors the executor's equi-key extraction: equality
// conjuncts with one pure column expression per side become keys, everything
// else is residual.
func splitCubeEquiJoin(pred expr.Expr, ls, rs relation.Schema) (leftKeys, rightKeys []expr.Expr, residual expr.Expr) {
	if pred == nil {
		return nil, nil, nil
	}
	var rest []expr.Expr
	for _, c := range expr.Conjuncts(pred) {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			rest = append(rest, c)
			continue
		}
		switch {
		case colsBindIn(b.L, ls) && colsBindIn(b.R, rs):
			leftKeys = append(leftKeys, b.L)
			rightKeys = append(rightKeys, b.R)
		case colsBindIn(b.R, ls) && colsBindIn(b.L, rs):
			leftKeys = append(leftKeys, b.R)
			rightKeys = append(rightKeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	return leftKeys, rightKeys, expr.AndAll(rest)
}

// exprsBindIn reports whether every column across es resolves within s.
// Expressions without columns (constants) bind anywhere.
func exprsBindIn(es []expr.Expr, s relation.Schema) bool {
	for _, e := range es {
		ok := true
		expr.Walk(e, func(x expr.Expr) bool {
			switch c := x.(type) {
			case *expr.Column:
				if _, err := s.IndexErr(c.Qualifier, c.Name); err != nil {
					ok = false
					return false
				}
			case *expr.Subquery:
				ok = false
				return false
			}
			return ok
		})
		if !ok {
			return false
		}
	}
	return true
}

// colsBindIn is exprsBindIn for a single expression that must actually read
// the side (at least one column) and contain no subqueries, aggregates, or
// unresolved IN sources — the executor's key-compilation contract.
func colsBindIn(e expr.Expr, s relation.Schema) bool {
	ok, hasCol := true, false
	expr.Walk(e, func(x expr.Expr) bool {
		switch c := x.(type) {
		case *expr.Column:
			hasCol = true
			if _, err := s.IndexErr(c.Qualifier, c.Name); err != nil {
				ok = false
				return false
			}
		case *expr.In:
			if _, resolved := c.Source.(*expr.SetSource); !resolved {
				ok = false
				return false
			}
		case *expr.Subquery, *expr.Agg:
			ok = false
			return false
		}
		return ok
	})
	return ok && hasCol
}
