// Package relation implements the relational data model underlying DVMS:
// typed values, schemas, tuples, and deterministic in-memory relations.
//
// The paper (§2.1) models both the data domain and the visual domain (marks
// relations, the pixels relation) with ordinary relations; every other
// subsystem in this repository is built on the types defined here.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by DeVIL relations.
type Kind uint8

// Supported value kinds. KindNull is the type of the SQL NULL literal and of
// any column whose type has not been constrained yet.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is int or float.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value contains only comparable fields so it can be used directly as a map
// key (hash aggregation, hash joins, and distinct all rely on this).
type Value struct {
	kind Kind
	i    int64 // int payload; bool payload as 0/1
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload. The second result is false when the
// value is not a bool.
func (v Value) AsBool() (bool, bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.i != 0, true
}

// AsInt returns the value as an int64, coercing floats with a fractional
// truncation and bools to 0/1. The second result is false for NULL/strings
// that do not parse.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		return v.i, true
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	default:
		return 0, false
	}
}

// AsFloat returns the value as a float64 with the same coercions as AsInt.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	case KindBool:
		return float64(v.i), true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsString returns the string payload; non-strings are rendered with String().
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Truthy reports whether the value counts as true in a WHERE clause:
// bool true, nonzero numbers, and nonempty strings. NULL is not truthy.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// String renders the value for display and for deterministic hashing keys.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Equal reports SQL-style equality with numeric cross-kind comparison
// (Int(3) equals Float(3.0)). NULL equals NULL here, which is what hash
// grouping wants; expression-level `=` handles three-valued logic separately.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare defines a total order over values used by ORDER BY, MIN/MAX, and
// deterministic relation sorting. Kinds order as
// NULL < bool < numeric < string; numerics compare by magnitude across
// int/float.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		return cmpInt(vr, or)
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool && o.kind == KindBool:
		return cmpInt64(v.i, o.i)
	case v.kind == KindString:
		return strings.Compare(v.s, o.s)
	default: // both numeric
		if v.kind == KindInt && o.kind == KindInt {
			return cmpInt64(v.i, o.i)
		}
		vf, _ := v.AsFloat()
		of, _ := o.AsFloat()
		switch {
		case vf < of:
			return -1
		case vf > of:
			return 1
		default:
			return 0
		}
	}
}

// rank buckets kinds so cross-kind comparisons are total: NULL(0) < bool(1)
// < numeric(2) < string(3).
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

// Key returns a canonical comparable form used for hashing: numerics that
// hold integral values are normalized to the int representation so that
// Int(3) and Float(3) collide as SQL expects.
func (v Value) Key() Value {
	if v.kind == KindFloat && v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) &&
		v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
		return Int(int64(v.f))
	}
	return v
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
