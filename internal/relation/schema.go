package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation. Qualifier carries the table
// alias a column was bound under ("SP" in "SP.productId"); it is empty for
// base relations and filled in by the executor when scans are aliased.
type Column struct {
	Qualifier string
	Name      string
	Kind      Kind
}

// QName returns the display name, "qualifier.name" when qualified.
func (c Column) QName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, kind) pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Col is a convenience constructor for an unqualified column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// Equal reports whether two schemas have identical columns (qualifier,
// name, and kind, in order).
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i, c := range s.Cols {
		if c != o.Cols[i] {
			return false
		}
	}
	return true
}

// Index resolves a possibly qualified column reference to a position.
// Matching is case-insensitive on names. An unqualified reference matches a
// column by name; if it matches more than one column the reference is
// ambiguous and -1 is returned along with ErrAmbiguous via IndexErr.
func (s Schema) Index(qualifier, name string) int {
	idx, _ := s.IndexErr(qualifier, name)
	return idx
}

// IndexErr is Index with an explanatory error for ambiguous or missing
// references.
func (s Schema) IndexErr(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			// Exact-qualifier duplicates are genuinely ambiguous; for
			// unqualified lookups prefer reporting ambiguity so callers
			// qualify the reference, matching SQL semantics.
			return -1, fmt.Errorf("ambiguous column reference %q", Column{Qualifier: qualifier, Name: name}.QName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown column %q", Column{Qualifier: qualifier, Name: name}.QName())
	}
	return found, nil
}

// Qualify returns a copy of the schema with every column's qualifier set to
// alias (scans under "FROM Sales AS S" expose S.productId and so on).
func (s Schema) Qualify(alias string) Schema {
	out := Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		c.Qualifier = alias
		out.Cols[i] = c
	}
	return out
}

// Concat returns the schema of a join output: the left columns followed by
// the right columns.
func (s Schema) Concat(o Schema) Schema {
	out := Schema{Cols: make([]Column, 0, len(s.Cols)+len(o.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, o.Cols...)
	return out
}

// UnionCompatible reports whether two schemas have the same arity. Column
// kinds are allowed to differ (DeVIL programs freely mix int and float
// projections across UNION branches); names come from the left branch as in
// SQL.
func (s Schema) UnionCompatible(o Schema) bool { return len(s.Cols) == len(o.Cols) }

// Names returns the unqualified column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a int, b string)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QName())
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
