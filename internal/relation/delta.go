package relation

// Deltas are the currency of incremental view maintenance: instead of
// recomputing a view from scratch when an input changes, the engine ships
// the change itself — a multiset of inserted and deleted tuples — through a
// stateful operator pipeline (internal/exec) and applies the resulting
// output delta to the materialized view. Equivalence is the canonical
// hashing equivalence of Tuple.Hash/Tuple.Equal, the same one the
// executor's hash operators use.

import "fmt"

// Delta is a bag-semantics change to a relation: Ins tuples are added and
// Del tuples are removed (one occurrence per entry). A tuple may appear
// multiple times in either list; Consolidate cancels matching pairs.
type Delta struct {
	Ins []Tuple
	Del []Tuple
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Ins) == 0 && len(d.Del) == 0 }

// Len returns the total number of change rows carried.
func (d Delta) Len() int { return len(d.Ins) + len(d.Del) }

// String summarizes the delta for logs and errors.
func (d Delta) String() string {
	return fmt.Sprintf("Δ(+%d -%d)", len(d.Ins), len(d.Del))
}

// Consolidate cancels insert/delete pairs of equal tuples, returning the
// net delta. The engine uses it at mutation sites that clear-and-refill
// relations (compound event tables), so an unchanged row does not ripple
// through the dataflow as a delete plus an insert.
func (d Delta) Consolidate() Delta {
	if len(d.Ins) == 0 || len(d.Del) == 0 {
		return d
	}
	return cancel(d.Del, d.Ins)
}

// Invert returns the delta that undoes d: applying d then d.Invert() (or
// vice versa) leaves a relation's bag of tuples unchanged. The delta-log
// version store uses it to walk history backwards from the live state.
func (d Delta) Invert() Delta { return Delta{Ins: d.Del, Del: d.Ins} }

// Compose returns the net delta of applying a then b under bag semantics:
// an insert in one that matches a delete in the other cancels, so a row
// added and removed within the composed window vanishes from the log. The
// version store composes all records between two version boundaries into
// one per-relation entry.
func Compose(a, b Delta) Delta {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	out := Delta{
		Ins: append(append(make([]Tuple, 0, len(a.Ins)+len(b.Ins)), a.Ins...), b.Ins...),
		Del: append(append(make([]Tuple, 0, len(a.Del)+len(b.Del)), a.Del...), b.Del...),
	}
	return out.Consolidate()
}

// cancel nets adds against removes: the result's Ins are add rows with no
// matching remove, its Del the remaining unmatched removes. Shared by
// Consolidate (removes = Del, adds = Ins) and Diff (removes = old rows,
// adds = new rows).
func cancel(removes, adds []Tuple) Delta {
	bag := NewTupleBag(len(removes))
	for _, t := range removes {
		bag.Add(t, 1)
	}
	out := Delta{}
	for _, t := range adds {
		if bag.Add(t, -1) >= 0 {
			continue // cancelled against one remove
		}
		bag.Add(t, 1) // restore to zero; genuinely new
		out.Ins = append(out.Ins, t)
	}
	bag.Each(func(t Tuple, n int64) {
		for ; n > 0; n-- {
			out.Del = append(out.Del, t)
		}
	})
	return out
}

// TupleBag is a counting multiset of tuples under the canonical hashing
// equivalence. Counts may go negative (useful for symmetric difference);
// the first tuple seen for an equivalence class is kept as its canonical
// representative.
type TupleBag struct {
	buckets map[uint64][]int32
	keys    []Tuple
	counts  []int64
}

// NewTupleBag creates a bag sized for roughly capacity distinct tuples.
func NewTupleBag(capacity int) *TupleBag {
	if capacity < 0 {
		capacity = 0
	}
	return &TupleBag{
		buckets: make(map[uint64][]int32, capacity),
		keys:    make([]Tuple, 0, capacity),
		counts:  make([]int64, 0, capacity),
	}
}

func (b *TupleBag) id(t Tuple, insert bool) int32 {
	h := t.Hash()
	for _, id := range b.buckets[h] {
		if b.keys[id].Equal(t) {
			return id
		}
	}
	if !insert {
		return -1
	}
	id := int32(len(b.keys))
	b.keys = append(b.keys, t)
	b.counts = append(b.counts, 0)
	b.buckets[h] = append(b.buckets[h], id)
	return id
}

// Add adjusts the tuple's count by n and returns the new count.
func (b *TupleBag) Add(t Tuple, n int64) int64 {
	id := b.id(t, true)
	b.counts[id] += n
	return b.counts[id]
}

// Count returns the tuple's current count (0 if never seen).
func (b *TupleBag) Count(t Tuple) int64 {
	id := b.id(t, false)
	if id < 0 {
		return 0
	}
	return b.counts[id]
}

// Each visits every equivalence class with a non-zero count, in first-seen
// order.
func (b *TupleBag) Each(fn func(t Tuple, n int64)) {
	for id, t := range b.keys {
		if b.counts[id] != 0 {
			fn(t, b.counts[id])
		}
	}
}

// Diff computes the delta transforming old into new under bag semantics:
// applying the result to old yields a bag equal to new. Cost is
// O(len(old)+len(new)) tuple hashes — proportional to the relation sizes,
// which is why the engine prefers pipeline-propagated deltas and uses Diff
// only to derive deltas for views that fell back to full recomputation.
func Diff(old, new *Relation) Delta {
	return cancel(old.Rows, new.Rows)
}

// ApplyDelta applies d to the relation in place: each Del entry removes the
// earliest matching occurrence, Ins rows append at the end (so rows that do
// not change keep their relative paint order for render sinks). The update
// is atomic: an unmatched delete or an arity mismatch leaves the relation
// untouched and returns an error, letting callers fall back to full
// recomputation with consistent state.
func (r *Relation) ApplyDelta(d Delta) error {
	arity := r.Schema.Len()
	for _, t := range d.Ins {
		if len(t) != arity {
			return fmt.Errorf("relation %s: delta insert arity %d does not match schema arity %d", r.Name, len(t), arity)
		}
	}
	if len(d.Del) == 0 {
		r.Rows = append(r.Rows, d.Ins...)
		return nil
	}
	for _, t := range d.Del {
		if len(t) != arity {
			return fmt.Errorf("relation %s: delta delete arity %d does not match schema arity %d", r.Name, len(t), arity)
		}
	}
	if len(d.Del) > len(r.Rows) {
		return fmt.Errorf("relation %s: delta deletes %d rows but only %d exist", r.Name, len(d.Del), len(r.Rows))
	}
	bag := NewTupleBag(len(d.Del))
	for _, t := range d.Del {
		bag.Add(t, 1)
	}
	remaining := len(d.Del)
	kept := make([]Tuple, 0, len(r.Rows)-len(d.Del)+len(d.Ins))
	for _, t := range r.Rows {
		if remaining > 0 && bag.Count(t) > 0 {
			bag.Add(t, -1)
			remaining--
			continue
		}
		kept = append(kept, t)
	}
	if remaining > 0 {
		return fmt.Errorf("relation %s: delta deletes %d rows not present", r.Name, remaining)
	}
	r.Rows = append(kept, d.Ins...)
	return nil
}
