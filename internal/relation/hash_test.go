package relation

import (
	"math"
	"testing"
	"testing/quick"
)

// TestHashAgreesWithKey checks, over random value pairs, that Tuple.Equal
// matches the equivalence Tuple.Key induces and that equal tuples hash
// identically — the contract the executor's hash tables rely on.
func TestHashAgreesWithKey(t *testing.T) {
	mk := func(sel uint8, i int64, f float64, s string) Value {
		switch sel % 5 {
		case 0:
			return Null()
		case 1:
			return Bool(i%2 == 0)
		case 2:
			return Int(i)
		case 3:
			return Float(f)
		default:
			return String(s)
		}
	}
	prop := func(sa, sb uint8, ia, ib int64, fa, fb float64, stra, strb string) bool {
		a := Tuple{mk(sa, ia, fa, stra)}
		b := Tuple{mk(sb, ib, fb, strb)}
		keyEq := a.Key() == b.Key()
		if a.Equal(b) != keyEq {
			t.Logf("Equal mismatch: %v vs %v (keyEq=%v)", a, b, keyEq)
			return false
		}
		if keyEq && a.Hash() != b.Hash() {
			t.Logf("hash mismatch for equal tuples: %v vs %v", a, b)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestHashEdgeCases pins the normalization corners: integral floats collapse
// to ints, -0 to 0, NaNs are self-equal, and kinds never cross-collide.
func TestHashEdgeCases(t *testing.T) {
	eq := [][2]Value{
		{Int(3), Float(3.0)},
		{Float(-0.0), Int(0)},
		{Float(math.NaN()), Float(math.NaN())},
		{Null(), Null()},
		{String(""), String("")},
	}
	for _, p := range eq {
		a, b := Tuple{p[0]}, Tuple{p[1]}
		if !a.Equal(b) {
			t.Fatalf("%s and %s should be hash-equal", p[0], p[1])
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("%s and %s should hash alike", p[0], p[1])
		}
	}
	ne := [][2]Value{
		{String("3"), Int(3)},
		{Bool(true), Int(1)},
		{Null(), Int(0)},
		{Float(1.5), Float(1.25)},
		{Float(math.NaN()), Float(5)}, // Compare orders these equal; Key does not
		{String("a"), String("b")},
	}
	for _, p := range ne {
		a, b := Tuple{p[0]}, Tuple{p[1]}
		if a.Equal(b) {
			t.Fatalf("%s and %s should not be hash-equal", p[0], p[1])
		}
	}
	if (Tuple{Int(1), Int(2)}).Equal(Tuple{Int(1)}) {
		t.Fatal("tuples of different arity should differ")
	}
}

// TestTupleHashNoAllocs verifies the whole point: hashing a tuple performs
// zero heap allocations (Tuple.Key allocated one string per call).
func TestTupleHashNoAllocs(t *testing.T) {
	row := Tuple{Int(42), String("east"), Float(1.25), Bool(true), Null()}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = row.Hash()
	})
	if allocs > 0 {
		t.Fatalf("Tuple.Hash allocates %.1f per call", allocs)
	}
	other := row.Clone()
	allocs = testing.AllocsPerRun(1000, func() {
		if !row.Equal(other) {
			t.Fatal("clone should be equal")
		}
	})
	if allocs > 0 {
		t.Fatalf("Tuple.Equal allocates %.1f per call", allocs)
	}
}
