package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{String("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
}

func TestValueCoercions(t *testing.T) {
	if n, ok := Float(3.9).AsInt(); !ok || n != 3 {
		t.Errorf("Float(3.9).AsInt() = %d,%v", n, ok)
	}
	if f, ok := Int(4).AsFloat(); !ok || f != 4 {
		t.Errorf("Int(4).AsFloat() = %v,%v", f, ok)
	}
	if n, ok := String(" 42 ").AsInt(); !ok || n != 42 {
		t.Errorf("String(42).AsInt() = %d,%v", n, ok)
	}
	if f, ok := String("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("String(2.5).AsFloat() = %v,%v", f, ok)
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("Null().AsInt() ok = true")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true).AsBool() failed")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("Int(1).AsBool() ok = true, want strict bool")
	}
}

func TestValueTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Int(-3), Float(0.1), String("a")}
	falsy := []Value{Null(), Bool(false), Int(0), Float(0), String("")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v.Truthy() = false", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v.Truthy() = true", v)
		}
	}
}

func TestValueCompareCrossKind(t *testing.T) {
	if Int(3).Compare(Float(3.0)) != 0 {
		t.Error("Int(3) != Float(3.0)")
	}
	if Int(3).Compare(Float(3.5)) >= 0 {
		t.Error("Int(3) >= Float(3.5)")
	}
	if Null().Compare(Int(math.MinInt64)) >= 0 {
		t.Error("NULL should sort before any int")
	}
	if Bool(true).Compare(Int(0)) >= 0 {
		t.Error("bool should sort before numeric")
	}
	if Int(math.MaxInt64).Compare(String("")) >= 0 {
		t.Error("numeric should sort before string")
	}
	if String("a").Compare(String("b")) >= 0 {
		t.Error("string order broken")
	}
}

// Property: Compare is a total order — antisymmetric and transitive over
// randomly generated values.
func TestValueCompareTotalOrder(t *testing.T) {
	gen := func(a, b int64, fa, fb float64, sa, sb string, pick uint8) bool {
		va := pickValue(pick&3, a, fa, sa)
		vb := pickValue((pick>>2)&3, b, fb, sb)
		ab, ba := va.Compare(vb), vb.Compare(va)
		if ab != -ba {
			return false
		}
		// reflexive
		return va.Compare(va) == 0 && vb.Compare(vb) == 0
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueCompareTransitive(t *testing.T) {
	gen := func(a, b, c int64, fa, fb, fc float64, pick uint8) bool {
		x := pickValue(pick&3, a, fa, "x")
		y := pickValue((pick>>2)&3, b, fb, "y")
		z := pickValue((pick>>4)&3, c, fc, "z")
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func pickValue(k uint8, i int64, f float64, s string) Value {
	switch k {
	case 0:
		return Int(i)
	case 1:
		if math.IsNaN(f) {
			f = 0
		}
		return Float(f)
	case 2:
		return String(s)
	default:
		return Null()
	}
}

func TestValueKeyNormalizesIntegralFloats(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Key() should collide Int(3) and Float(3)")
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("Key() should not collide Int(3) and Float(3.5)")
	}
	inf := Float(math.Inf(1))
	if inf.Key().Kind() != KindFloat {
		t.Error("Key(+Inf) should remain float")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"true":  Bool(true),
		"false": Bool(false),
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hi":    String("hi"),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String() = %q, want %q", v.String(), want)
		}
	}
}
