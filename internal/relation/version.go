package relation

import "fmt"

// VersionKind distinguishes the temporal reference classes of DeVIL (§2.1.2):
// the current working state, committed interaction versions (@vnow-i), and
// intra-interaction event versions (@tnow-j).
type VersionKind uint8

const (
	// VersionCurrent is an unsuffixed relation reference: the live state.
	VersionCurrent VersionKind = iota
	// VersionVNow is "@vnow-i": the committed state i interactions ago.
	// Offset 0 means the most recent commit.
	VersionVNow
	// VersionTNow is "@tnow-j": the state j events ago within the current
	// interaction (transaction). Offset 0 means the state after the latest
	// applied event.
	VersionTNow
)

// VersionRef names a relation state in time. The zero value is the live
// state.
type VersionRef struct {
	Kind   VersionKind
	Offset int
}

// Current returns the live-state reference.
func Current() VersionRef { return VersionRef{} }

// VNow returns the committed-version reference i interactions back.
func VNow(i int) VersionRef { return VersionRef{Kind: VersionVNow, Offset: i} }

// TNow returns the event-version reference j events back.
func TNow(j int) VersionRef { return VersionRef{Kind: VersionTNow, Offset: j} }

// IsCurrent reports whether the reference names the live state.
func (v VersionRef) IsCurrent() bool { return v.Kind == VersionCurrent }

// String renders the reference in DeVIL's suffix syntax.
func (v VersionRef) String() string {
	switch v.Kind {
	case VersionVNow:
		return fmt.Sprintf("@vnow-%d", v.Offset)
	case VersionTNow:
		return fmt.Sprintf("@tnow-%d", v.Offset)
	default:
		return ""
	}
}
