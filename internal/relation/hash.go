package relation

// Allocation-free tuple hashing. Tuple.Key builds a canonical string per
// tuple — one heap allocation per row per hashing operator — so the executor
// now hashes values directly with FNV-1a and resolves collisions with
// Tuple.Equal chains. Hash and Equal agree with the equivalence Tuple.Key
// induces: values are normalized through Value.Key (integral floats collapse
// to ints) and kinds are folded into the hash so String("3") and Int(3) stay
// distinct.

import "math"

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// canonicalNaN makes every NaN payload hash identically; hashEqual treats all
// NaNs as equal (as Tuple.Key did via the "NaN" rendering).
var canonicalNaN = math.Float64bits(math.NaN())

// hashInto folds the value into an FNV-1a state, kind first so payload bytes
// of different kinds never collide trivially.
func (v Value) hashInto(h uint64) uint64 {
	k := v.Key()
	h ^= uint64(k.kind)
	h *= fnvPrime64
	switch k.kind {
	case KindNull:
	case KindBool, KindInt:
		x := uint64(k.i)
		for s := uint(0); s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= fnvPrime64
		}
	case KindFloat:
		bits := math.Float64bits(k.f)
		if math.IsNaN(k.f) {
			bits = canonicalNaN
		}
		for s := uint(0); s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= fnvPrime64
		}
	case KindString:
		for i := 0; i < len(k.s); i++ {
			h ^= uint64(k.s[i])
			h *= fnvPrime64
		}
	}
	return h
}

// hashEqual reports equality under the canonical hashing equivalence — the
// same relation Tuple.Key induces. It is stricter than Compare (which orders
// NaN equal to every number) and looser than Go equality (Int(3) matches
// Float(3.0) after Key normalization).
func (v Value) hashEqual(o Value) bool {
	a, b := v.Key(), o.Key()
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f || (math.IsNaN(a.f) && math.IsNaN(b.f))
	case KindString:
		return a.s == b.s
	default:
		return false
	}
}

// Hash returns an FNV-1a hash of the whole tuple without building strings.
// Tuples equal under Equal hash identically.
func (t Tuple) Hash() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h = v.hashInto(h)
	}
	return h
}

// Equal reports whether two tuples are the same row under the canonical
// hashing equivalence (see Value.Key): the collision check paired with Hash
// in the executor's join, aggregation, distinct, and set-operation tables.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].hashEqual(o[i]) {
			return false
		}
	}
	return true
}
