package relation

import (
	"math/rand"
	"testing"
)

func deltaRow(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Int(v)
	}
	return t
}

func deltaSchema() Schema {
	return NewSchema(Col("a", KindInt), Col("b", KindInt))
}

func TestDiffAndApplyRoundTrip(t *testing.T) {
	old := New("r", deltaSchema())
	old.Rows = []Tuple{deltaRow(1, 1), deltaRow(1, 1), deltaRow(2, 2), deltaRow(3, 3)}
	upd := New("r", deltaSchema())
	upd.Rows = []Tuple{deltaRow(1, 1), deltaRow(4, 4), deltaRow(2, 2), deltaRow(2, 2)}

	d := Diff(old, upd)
	if len(d.Ins) != 2 || len(d.Del) != 2 {
		t.Fatalf("diff = %s, want +2 -2", d)
	}
	if err := old.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if !Equal(old, upd) {
		t.Fatalf("apply(diff) diverges:\n%s\nvs\n%s", old, upd)
	}
}

func TestDiffEmptyForEqualBags(t *testing.T) {
	a := New("r", deltaSchema())
	a.Rows = []Tuple{deltaRow(1, 2), deltaRow(3, 4), deltaRow(1, 2)}
	b := New("r", deltaSchema())
	b.Rows = []Tuple{deltaRow(3, 4), deltaRow(1, 2), deltaRow(1, 2)}
	if d := Diff(a, b); !d.Empty() {
		t.Fatalf("diff of equal bags = %s", d)
	}
}

func TestApplyDeltaUnmatchedDeleteIsAtomic(t *testing.T) {
	r := New("r", deltaSchema())
	r.Rows = []Tuple{deltaRow(1, 1), deltaRow(2, 2)}
	d := Delta{Ins: []Tuple{deltaRow(9, 9)}, Del: []Tuple{deltaRow(7, 7)}}
	if err := r.ApplyDelta(d); err == nil {
		t.Fatal("unmatched delete should error")
	}
	if len(r.Rows) != 2 {
		t.Fatalf("failed apply mutated the relation: %d rows", len(r.Rows))
	}
	// More deletes than rows must error gracefully, not panic on a
	// negative capacity (the out-of-sync case the engine recovers from).
	over := Delta{Del: []Tuple{deltaRow(1, 1), deltaRow(1, 1), deltaRow(2, 2)}}
	if err := r.ApplyDelta(over); err == nil {
		t.Fatal("oversized delete list should error")
	}
	if len(r.Rows) != 2 {
		t.Fatalf("failed apply mutated the relation: %d rows", len(r.Rows))
	}
}

func TestApplyDeltaArityChecked(t *testing.T) {
	r := New("r", deltaSchema())
	r.Rows = []Tuple{deltaRow(1, 1)}
	if err := r.ApplyDelta(Delta{Ins: []Tuple{deltaRow(1)}}); err == nil {
		t.Fatal("short insert should error")
	}
	if err := r.ApplyDelta(Delta{Del: []Tuple{deltaRow(1, 1, 1)}}); err == nil {
		t.Fatal("wide delete should error")
	}
}

func TestApplyDeltaPreservesSurvivorOrder(t *testing.T) {
	r := New("r", deltaSchema())
	r.Rows = []Tuple{deltaRow(1, 1), deltaRow(2, 2), deltaRow(3, 3), deltaRow(2, 2)}
	err := r.ApplyDelta(Delta{Del: []Tuple{deltaRow(2, 2)}, Ins: []Tuple{deltaRow(4, 4)}})
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{deltaRow(1, 1), deltaRow(3, 3), deltaRow(2, 2), deltaRow(4, 4)}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i := range want {
		if !r.Rows[i].Equal(want[i]) {
			t.Fatalf("row %d = %v, want %v (earliest occurrence should be removed)", i, r.Rows[i], want[i])
		}
	}
}

func TestConsolidateCancelsPairs(t *testing.T) {
	d := Delta{
		Ins: []Tuple{deltaRow(1, 1), deltaRow(2, 2), deltaRow(1, 1)},
		Del: []Tuple{deltaRow(1, 1), deltaRow(3, 3)},
	}
	c := d.Consolidate()
	if len(c.Ins) != 2 || len(c.Del) != 1 {
		t.Fatalf("consolidated = %s, want +2 -1", c)
	}
	// Fully cancelling delta.
	d2 := Delta{Ins: []Tuple{deltaRow(5, 5)}, Del: []Tuple{deltaRow(5, 5)}}
	if c2 := d2.Consolidate(); !c2.Empty() {
		t.Fatalf("self-cancelling delta = %s", c2)
	}
}

func TestDiffApplyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		mk := func() *Relation {
			r := New("r", deltaSchema())
			n := rng.Intn(30)
			for i := 0; i < n; i++ {
				r.Rows = append(r.Rows, deltaRow(int64(rng.Intn(6)), int64(rng.Intn(4))))
			}
			return r
		}
		old, upd := mk(), mk()
		d := Diff(old, upd)
		cp := old.Snapshot()
		if err := cp.ApplyDelta(d); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Equal(cp, upd) {
			t.Fatalf("trial %d: apply(diff) diverges", trial)
		}
		if Equal(old, upd) && !d.Empty() {
			t.Fatalf("trial %d: equal bags produced non-empty diff %s", trial, d)
		}
	}
}

// Invert undoes a delta: apply(d) then apply(d.Invert()) is the identity
// on the bag of tuples.
func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rel := New("r", deltaSchema())
		for i := 0; i < rng.Intn(12); i++ {
			rel.Rows = append(rel.Rows, deltaRow(int64(rng.Intn(4)), int64(rng.Intn(4))))
		}
		orig := rel.Clone()
		var d Delta
		for i := 0; i < rng.Intn(4); i++ {
			d.Ins = append(d.Ins, deltaRow(int64(rng.Intn(4)), int64(rng.Intn(4))))
		}
		if len(rel.Rows) > 0 {
			for i := 0; i < rng.Intn(len(rel.Rows)+1); i++ {
				d.Del = append(d.Del, rel.Rows[rng.Intn(len(rel.Rows))])
			}
		}
		d = d.Consolidate()
		if err := rel.ApplyDelta(d); err != nil {
			continue // duplicate deletes may overdraw; irrelevant here
		}
		if err := rel.ApplyDelta(d.Invert()); err != nil {
			t.Fatalf("trial %d: invert apply: %v", trial, err)
		}
		if !Equal(rel, orig) {
			t.Fatalf("trial %d: apply(d);apply(d⁻¹) ≠ identity\n%s\nvs\n%s", trial, rel, orig)
		}
	}
}

// Compose(a, b) applied once equals applying a then b, and nets out rows
// added and removed within the window.
func TestComposeEqualsSequentialApply(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		rel := New("r", deltaSchema())
		for i := 0; i < 4+rng.Intn(8); i++ {
			rel.Rows = append(rel.Rows, deltaRow(int64(rng.Intn(4)), int64(rng.Intn(4))))
		}
		seq := rel.Clone()
		one := rel.Clone()
		randomDelta := func(cur *Relation) Delta {
			var d Delta
			for i := 0; i < rng.Intn(3); i++ {
				d.Ins = append(d.Ins, deltaRow(int64(rng.Intn(4)), int64(rng.Intn(4))))
			}
			if len(cur.Rows) > 0 && rng.Intn(2) == 0 {
				d.Del = append(d.Del, cur.Rows[rng.Intn(len(cur.Rows))])
			}
			return d
		}
		a := randomDelta(seq)
		if err := seq.ApplyDelta(a); err != nil {
			t.Fatalf("trial %d: apply a: %v", trial, err)
		}
		b := randomDelta(seq)
		if err := seq.ApplyDelta(b); err != nil {
			t.Fatalf("trial %d: apply b: %v", trial, err)
		}
		c := Compose(a, b)
		if err := one.ApplyDelta(c); err != nil {
			t.Fatalf("trial %d: apply compose: %v", trial, err)
		}
		if !Equal(seq, one) {
			t.Fatalf("trial %d: compose diverges from sequential apply\n%s\nvs\n%s", trial, seq, one)
		}
	}
	// The net-out property: a row inserted by a and deleted by b vanishes.
	a := Delta{Ins: []Tuple{deltaRow(9, 9)}}
	b := Delta{Del: []Tuple{deltaRow(9, 9)}}
	if c := Compose(a, b); !c.Empty() {
		t.Fatalf("insert+delete of one row should net to empty, got %s", c)
	}
}
