package relation

import (
	"testing"
)

func TestBitmap(t *testing.T) {
	m := NewBitmap(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if m.Get(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		m.Set(i)
		if !m.Get(i) {
			t.Fatalf("bit %d did not stick", i)
		}
	}
	if got := m.Count(130); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	m.Clear(64)
	if m.Get(64) {
		t.Fatal("Clear(64) did not clear")
	}
	if got := m.Count(130); got != 6 {
		t.Fatalf("Count after clear = %d, want 6", got)
	}
	// A nil bitmap reads as empty; out-of-range bits read as unset.
	var nilMap Bitmap
	if nilMap.Get(5) || m.Get(1 << 20) {
		t.Fatal("out-of-range / nil bitmap bits should read unset")
	}
}

// batchRows mixes the kinds and NULL placements the converter has to handle.
func batchRows() []Tuple {
	return []Tuple{
		{Int(3), Float(1.5), String("x"), Bool(true), Int(7)},
		{Int(-1), Float(-2.25), String(""), Bool(false), Float(0.5)},
		{Null(), Null(), Null(), Null(), Null()},
		{Int(1 << 40), Float(3), String("zz"), Bool(true), String("mixed")},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rows := batchRows()
	b := FromTuples(rows, len(rows[0]), nil)
	if b.N != len(rows) {
		t.Fatalf("N = %d, want %d", b.N, len(rows))
	}
	// Typed columns for uniform int/float/string, Mixed for bool and the
	// int/float/string blend in column 4.
	if b.Cols[0].Kind != KindInt || b.Cols[1].Kind != KindFloat || b.Cols[2].Kind != KindString {
		t.Fatalf("uniform columns not typed: kinds %v %v %v", b.Cols[0].Kind, b.Cols[1].Kind, b.Cols[2].Kind)
	}
	if b.Cols[3].Mixed == nil || b.Cols[4].Mixed == nil {
		t.Fatal("bool and mixed-kind columns should fall back to Mixed")
	}
	for ci := range b.Cols {
		for i, row := range rows {
			got, want := b.Cols[ci].Value(i), row[ci]
			if got.Compare(want) != 0 || got.IsNull() != want.IsNull() {
				t.Fatalf("col %d row %d = %v, want %v", ci, i, got, want)
			}
		}
	}
	// Null bookkeeping on a typed column.
	if !b.Cols[0].Null(2) || b.Cols[0].Null(0) {
		t.Fatal("null bitmap wrong on typed column")
	}

	// All selected by default; Tuples returns the retained source rows.
	if b.SelCount() != len(rows) {
		t.Fatalf("SelCount = %d, want %d", b.SelCount(), len(rows))
	}
	out := b.Tuples(nil)
	if len(out) != len(rows) {
		t.Fatalf("Tuples returned %d rows, want %d", len(out), len(rows))
	}
	for i := range out {
		if !out[i].Equal(rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, out[i], rows[i])
		}
	}
}

func TestBatchSelection(t *testing.T) {
	rows := batchRows()
	b := FromTuples(rows, len(rows[0]), []int{0})
	b.Sel = NewBitmap(b.N)
	b.Sel.Set(1)
	b.Sel.Set(3)
	if b.SelCount() != 2 {
		t.Fatalf("SelCount = %d, want 2", b.SelCount())
	}
	out := b.Tuples(nil)
	if len(out) != 2 || !out[0].Equal(rows[1]) || !out[1].Equal(rows[3]) {
		t.Fatalf("selected tuples = %v", out)
	}
	// Only the needed column was extracted.
	if b.Cols[0].Ints == nil {
		t.Fatal("needed column not extracted")
	}
	if b.Cols[2].Strs != nil || b.Cols[2].Mixed != nil {
		t.Fatal("unneeded column was extracted")
	}
}

func TestBatchReconstructsWithoutRows(t *testing.T) {
	rows := batchRows()
	b := FromTuples(rows, len(rows[0]), nil)
	b.Rows = nil // force value reconstruction
	out := b.Tuples(nil)
	for i := range rows {
		if len(out[i]) != len(rows[i]) {
			t.Fatalf("row %d arity %d, want %d", i, len(out[i]), len(rows[i]))
		}
		for ci := range rows[i] {
			if out[i][ci].Compare(rows[i][ci]) != 0 {
				t.Fatalf("row %d col %d = %v, want %v", i, ci, out[i][ci], rows[i][ci])
			}
		}
	}
}

func TestBatchAllNullColumn(t *testing.T) {
	rows := []Tuple{{Null()}, {Null()}}
	b := FromTuples(rows, 1, nil)
	for i := range rows {
		if !b.Cols[0].Value(i).IsNull() {
			t.Fatalf("row %d should be NULL", i)
		}
	}
}
