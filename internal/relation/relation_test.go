package relation

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return NewSchema(Col("id", KindInt), Col("name", KindString), Col("v", KindFloat))
}

func TestSchemaIndexQualified(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "a", Name: "x", Kind: KindInt},
		Column{Qualifier: "b", Name: "x", Kind: KindInt},
		Column{Qualifier: "b", Name: "y", Kind: KindInt},
	)
	if got := s.Index("a", "x"); got != 0 {
		t.Errorf("Index(a.x) = %d", got)
	}
	if got := s.Index("b", "x"); got != 1 {
		t.Errorf("Index(b.x) = %d", got)
	}
	if got := s.Index("", "y"); got != 2 {
		t.Errorf("Index(y) = %d", got)
	}
	if _, err := s.IndexErr("", "x"); err == nil {
		t.Error("unqualified x should be ambiguous")
	}
	if _, err := s.IndexErr("", "zz"); err == nil {
		t.Error("missing column should error")
	}
	// case-insensitive
	if got := s.Index("B", "Y"); got != 2 {
		t.Errorf("Index(B.Y) = %d", got)
	}
}

func TestSchemaQualifyConcat(t *testing.T) {
	s := testSchema().Qualify("S")
	for _, c := range s.Cols {
		if c.Qualifier != "S" {
			t.Fatalf("qualifier = %q", c.Qualifier)
		}
	}
	j := s.Concat(testSchema().Qualify("T"))
	if j.Len() != 6 {
		t.Fatalf("concat len = %d", j.Len())
	}
	if j.Index("T", "id") != 3 {
		t.Errorf("T.id index = %d", j.Index("T", "id"))
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := New("t", testSchema())
	if err := r.Append(Tuple{Int(1), String("a"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Tuple{Int(1)}); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New("t", testSchema())
	r.MustAppend(Tuple{Int(1), String("a"), Float(1)})
	snap := r.Snapshot()
	r.MustAppend(Tuple{Int(2), String("b"), Float(2)})
	if snap.Len() != 1 {
		t.Fatalf("snapshot len = %d after mutation, want 1", snap.Len())
	}
	if r.Len() != 2 {
		t.Fatalf("live len = %d", r.Len())
	}
}

func TestSortDeterministic(t *testing.T) {
	r := New("t", testSchema())
	r.MustAppend(Tuple{Int(2), String("b"), Float(2)})
	r.MustAppend(Tuple{Int(1), String("z"), Float(9)})
	r.MustAppend(Tuple{Int(1), String("a"), Float(9)})
	r.SortDeterministic()
	if v, _ := r.Rows[0][0].AsInt(); v != 1 {
		t.Fatal("sort by first column failed")
	}
	if r.Rows[0][1].AsString() != "a" {
		t.Fatal("sort by second column failed")
	}
}

func TestEqualBagSemantics(t *testing.T) {
	a := New("a", testSchema())
	b := New("b", testSchema())
	a.MustAppend(Tuple{Int(1), String("x"), Float(1)})
	a.MustAppend(Tuple{Int(1), String("x"), Float(1)})
	a.MustAppend(Tuple{Int(2), String("y"), Float(2)})
	b.MustAppend(Tuple{Int(2), String("y"), Float(2)})
	b.MustAppend(Tuple{Int(1), String("x"), Float(1)})
	b.MustAppend(Tuple{Int(1), String("x"), Float(1)})
	if !Equal(a, b) {
		t.Fatal("bags should be equal regardless of order")
	}
	b.Rows = b.Rows[:2]
	if Equal(a, b) {
		t.Fatal("different multiplicities should not be equal")
	}
}

func TestTupleKeyDistinguishesKinds(t *testing.T) {
	a := Tuple{Int(1), String("2")}
	b := Tuple{Int(1), Int(2)}
	if a.Key() == b.Key() {
		t.Fatal("string \"2\" and int 2 must have different keys")
	}
	c := Tuple{Float(2), String("x")}
	d := Tuple{Int(2), String("x")}
	if c.Key() != d.Key() {
		t.Fatal("Float(2) and Int(2) should share a key (SQL equality)")
	}
}

// Property: Snapshot never observes later appends and CompareTuples is
// consistent with bag equality.
func TestSnapshotProperty(t *testing.T) {
	f := func(vals []int64) bool {
		r := New("p", NewSchema(Col("x", KindInt)))
		for _, v := range vals {
			r.MustAppend(Tuple{Int(v)})
		}
		snap := r.Snapshot()
		r.MustAppend(Tuple{Int(999)})
		return snap.Len() == len(vals) && Equal(snap, snap.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	r := New("t", NewSchema(Col("id", KindInt), Col("name", KindString)))
	r.MustAppend(Tuple{Int(1), String("widget")})
	out := r.String()
	if !strings.Contains(out, "id") || !strings.Contains(out, "widget") {
		t.Fatalf("table rendering missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected header+1 row, got %d lines", len(lines))
	}
}

func TestColumnExtract(t *testing.T) {
	r := New("t", testSchema())
	r.MustAppend(Tuple{Int(1), String("a"), Float(0.5)})
	r.MustAppend(Tuple{Int(2), String("b"), Float(1.5)})
	col, err := r.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 2 || col[1].String() != "1.5" {
		t.Fatalf("column = %v", col)
	}
	if _, err := r.Column("nope"); err == nil {
		t.Fatal("missing column should error")
	}
}
