package relation

// Columnar batches. A Batch is a column-oriented view of a block of rows:
// each column's values live in one typed slice ([]int64, []float64,
// []string) with a null bitmap, so the executor's inner loops (filter
// predicates, aggregate accumulation, cube tile builds) can run tight
// monomorphic loops instead of per-value interface dispatch over Tuple
// ([]Value) rows. A selection bitmap marks the rows that survive a filter
// without compacting the columns.
//
// Batches convert to and from the Tuple bags the rest of the system speaks,
// so adoption is incremental: an operator that understands batches converts
// once at its input boundary and hands rows onward unchanged.

// Bitmap is a dense bitset over row indices, used for both null masks and
// selection vectors. The zero value (nil) is a valid empty bitmap whose
// bits all read as unset.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all unset.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i. Out-of-range bits read as unset.
func (m Bitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(m) {
		return false
	}
	return m[w]&(1<<uint(i&63)) != 0
}

// Set sets bit i. The bit must be within the bitmap's capacity.
func (m Bitmap) Set(i int) { m[i>>6] |= 1 << uint(i&63) }

// Clear unsets bit i. The bit must be within the bitmap's capacity.
func (m Bitmap) Clear(i int) { m[i>>6] &^= 1 << uint(i&63) }

// Count returns the number of set bits among the first n.
func (m Bitmap) Count(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if m.Get(i) {
			total++
		}
	}
	return total
}

// BatchCol is one column of a Batch. Kind tells which slice holds the payload:
// KindInt → Ints, KindFloat → Floats, KindString → Strs; any column that is
// not uniformly one of those kinds (bools, mixed int/float, all-null) keeps
// its values in Mixed and kernels fall back to Value semantics. Null rows
// are flagged in Nulls and hold zero payloads in the typed slice.
type BatchCol struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Mixed  []Value
	Nulls  Bitmap // nil when the column has no NULLs
	HasNul bool
}

// Null reports whether row i of the column is NULL.
func (c *BatchCol) Null(i int) bool { return c.HasNul && c.Nulls.Get(i) }

// Value reconstructs row i of the column as a Value.
func (c *BatchCol) Value(i int) Value {
	if c.Null(i) {
		return Null()
	}
	switch c.Kind {
	case KindInt:
		return Int(c.Ints[i])
	case KindFloat:
		return Float(c.Floats[i])
	case KindString:
		return String(c.Strs[i])
	default:
		return c.Mixed[i]
	}
}

// Batch is a column-oriented block of rows plus a selection bitmap. Sel nil
// means every row is selected. Rows retains the source tuples so consumers
// that need full rows (group representatives, join probes) can reference
// them without reconstructing values.
type Batch struct {
	N    int
	Cols []BatchCol
	Sel  Bitmap // nil = all rows selected
	Rows []Tuple
}

// colFromTuples extracts column idx of rows into typed form. One pass
// detects the uniform kind; a second fills the typed slice. Mixed columns
// pay one extra Value copy per row and no more.
func colFromTuples(rows []Tuple, idx int) BatchCol {
	n := len(rows)
	c := BatchCol{Kind: KindNull}
	kind, uniform := KindNull, true
	for _, t := range rows {
		k := t[idx].kind
		if k == KindNull {
			c.HasNul = true
			continue
		}
		if kind == KindNull {
			kind = k
		} else if kind != k {
			uniform = false
			break
		}
	}
	if !uniform || kind == KindNull || kind == KindBool {
		c.Mixed = make([]Value, n)
		for i, t := range rows {
			c.Mixed[i] = t[idx]
		}
		// Null() reads back from Mixed directly; no bitmap needed.
		c.HasNul = false
		return c
	}
	c.Kind = kind
	if c.HasNul {
		c.Nulls = NewBitmap(n)
	}
	switch kind {
	case KindInt:
		c.Ints = make([]int64, n)
		for i, t := range rows {
			if v := t[idx]; v.kind == KindNull {
				c.Nulls.Set(i)
			} else {
				c.Ints[i] = v.i
			}
		}
	case KindFloat:
		c.Floats = make([]float64, n)
		for i, t := range rows {
			if v := t[idx]; v.kind == KindNull {
				c.Nulls.Set(i)
			} else {
				c.Floats[i] = v.f
			}
		}
	case KindString:
		c.Strs = make([]string, n)
		for i, t := range rows {
			if v := t[idx]; v.kind == KindNull {
				c.Nulls.Set(i)
			} else {
				c.Strs[i] = v.s
			}
		}
	}
	return c
}

// FromTuples builds a Batch over rows, extracting only the columns listed
// in need (all columns when need is nil). Unlisted columns stay zero-valued
// in Cols; row-level access goes through Rows. width is the row arity.
func FromTuples(rows []Tuple, width int, need []int) *Batch {
	b := &Batch{N: len(rows), Cols: make([]BatchCol, width), Rows: rows}
	if need == nil {
		for i := 0; i < width; i++ {
			b.Cols[i] = colFromTuples(rows, i)
		}
		return b
	}
	for _, i := range need {
		if i >= 0 && i < width && b.Cols[i].Mixed == nil && b.Cols[i].Kind == KindNull && b.Cols[i].Ints == nil {
			b.Cols[i] = colFromTuples(rows, i)
		}
	}
	return b
}

// Selected reports whether row i passes the selection bitmap.
func (b *Batch) Selected(i int) bool {
	return b.Sel == nil || b.Sel.Get(i)
}

// SelCount returns the number of selected rows.
func (b *Batch) SelCount() int {
	if b.Sel == nil {
		return b.N
	}
	return b.Sel.Count(b.N)
}

// Tuples appends the selected rows to dst as tuples, preferring the
// retained source rows and reconstructing from columns otherwise.
func (b *Batch) Tuples(dst []Tuple) []Tuple {
	for i := 0; i < b.N; i++ {
		if !b.Selected(i) {
			continue
		}
		if b.Rows != nil {
			dst = append(dst, b.Rows[i])
			continue
		}
		t := make(Tuple, len(b.Cols))
		for ci := range b.Cols {
			t[ci] = b.Cols[ci].Value(i)
		}
		dst = append(dst, t)
	}
	return dst
}
