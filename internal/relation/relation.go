package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation. Tuples are treated as immutable once
// appended to a relation; snapshotting relies on this to share row storage
// across versions.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns a canonical string key for hashing the whole tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		k := v.Key()
		b.WriteByte(byte('0' + k.Kind()))
		b.WriteString(k.String())
	}
	return b.String()
}

// Relation is a named, schema-typed bag of tuples. All DVMS state — base
// data, views, marks relations, event tables — is stored as Relations.
type Relation struct {
	Name   string
	Schema Schema
	Rows   []Tuple
}

// New creates an empty relation.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Append adds a row after checking arity. Kind checking is intentionally
// loose (NULLs and numeric widening are pervasive in DeVIL programs).
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.Name, len(t), r.Schema.Len())
	}
	r.Rows = append(r.Rows, t)
	return nil
}

// MustAppend is Append for statically known-correct rows; it panics on arity
// mismatch, which indicates a programming error rather than bad data.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Snapshot returns a copy of the relation that shares tuple storage. Because
// tuples are immutable this is safe and makes version snapshots (@vnow-i,
// @tnow-j) cheap: O(rows) pointers, no value copying.
func (r *Relation) Snapshot() *Relation {
	rows := make([]Tuple, len(r.Rows))
	copy(rows, r.Rows)
	return &Relation{Name: r.Name, Schema: r.Schema, Rows: rows}
}

// Clone returns a fully deep copy, used by tests and by callers that intend
// to mutate tuples in place.
func (r *Relation) Clone() *Relation {
	rows := make([]Tuple, len(r.Rows))
	for i, t := range r.Rows {
		rows[i] = t.Clone()
	}
	return &Relation{Name: r.Name, Schema: r.Schema, Rows: rows}
}

// SortDeterministic orders rows by their canonical tuple keys. DVMS sorts
// materialized views before diffing or rendering so outputs are stable across
// runs regardless of hash iteration order.
func (r *Relation) SortDeterministic() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		return compareTuples(r.Rows[i], r.Rows[j]) < 0
	})
}

func compareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(len(a), len(b))
}

// CompareTuples exposes the deterministic tuple order for other packages.
func CompareTuples(a, b Tuple) int { return compareTuples(a, b) }

// Column extracts one column as a value slice.
func (r *Relation) Column(name string) ([]Value, error) {
	idx, err := r.Schema.IndexErr("", name)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(r.Rows))
	for i, t := range r.Rows {
		out[i] = t[idx]
	}
	return out, nil
}

// String renders the relation as an aligned text table, the format used by
// cmd/devil and the experiment harness.
func (r *Relation) String() string {
	names := make([]string, len(r.Schema.Cols))
	widths := make([]int, len(r.Schema.Cols))
	for i, c := range r.Schema.Cols {
		names[i] = c.QName()
		widths[i] = len(names[i])
	}
	cells := make([][]string, len(r.Rows))
	for ri, t := range r.Rows {
		row := make([]string, len(t))
		for ci, v := range t {
			row[ci] = v.String()
			if ci < len(widths) && len(row[ci]) > widths[ci] {
				widths[ci] = len(row[ci])
			}
		}
		cells[ri] = row
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Equal reports whether two relations hold the same bag of tuples (order
// insensitive) over union-compatible schemas.
func Equal(a, b *Relation) bool {
	if a.Schema.Len() != b.Schema.Len() || len(a.Rows) != len(b.Rows) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	for _, t := range a.Rows {
		counts[t.Key()]++
	}
	for _, t := range b.Rows {
		k := t.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}
