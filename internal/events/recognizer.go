package events

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/relation"
)

// Actions reports what a Feed call did, in order: a transaction may begin,
// rows may be emitted into the compound event table, and the transaction may
// commit or abort. The engine applies these to storage and view maintenance.
type Actions struct {
	Began     bool
	Rows      []relation.Tuple
	Committed bool
	Aborted   bool
	// Filtered is true when the event was dropped before reaching the NFA
	// (wrong type, or a plain WHERE predicate failed), exposed for tests
	// and debugging.
	Filtered bool
}

// Recognizer is a compiled EVENT statement: a nondeterministic finite
// automaton over the low-level event stream. One Recognizer instance tracks
// one in-flight interaction at a time (the paper's single-user,
// single-interaction model; the engine composes several recognizers for
// multi-interaction programs).
type Recognizer struct {
	stmt   *parser.EventStmt
	funcs  *expr.Registry
	schema relation.Schema

	// plainFilters[i] are the WHERE conjuncts that reference only the alias
	// of sequence element i; failing one filters the event from the input
	// stream (it never reaches the NFA).
	plainFilters [][]expr.Expr
	// quantified predicates, checked per matching event (FORALL) or at
	// accept time (EXISTS).
	quants []quantPred
	// returnAt[g] is the sequence position whose events trigger emission
	// of RETURN group g (the maximum position referenced by the group).
	returnAt []int

	// runtime state
	active   bool
	state    int // index of the last matched sequence element
	bindings map[string]Event
	exists   []bool // satisfied flags for EXISTS quantifiers
}

type quantPred struct {
	forall  bool
	varName string
	overPos int
	cond    expr.Expr
	index   int // position within Recognizer.exists for EXISTS
}

// Compile validates an EVENT statement and builds its recognizer.
func Compile(stmt *parser.EventStmt, funcs *expr.Registry) (*Recognizer, error) {
	if len(stmt.Seq) == 0 {
		return nil, fmt.Errorf("event %s: empty sequence", stmt.Name)
	}
	if stmt.Seq[len(stmt.Seq)-1].Kleene {
		// §2.1.2: sequences must end with a non-repeating event so the NFA
		// transitions to accept exactly once (no never-ending transactions).
		return nil, fmt.Errorf("event %s: sequence must end with a non-repeating event", stmt.Name)
	}
	aliasPos := map[string]int{}
	for i, el := range stmt.Seq {
		key := strings.ToLower(el.Alias)
		if _, dup := aliasPos[key]; dup {
			return nil, fmt.Errorf("event %s: duplicate alias %q", stmt.Name, el.Alias)
		}
		aliasPos[key] = i
	}
	if len(stmt.Return) == 0 {
		return nil, fmt.Errorf("event %s: RETURN requires at least one group", stmt.Name)
	}
	arity := len(stmt.Return[0])
	for g, group := range stmt.Return {
		if len(group) != arity {
			return nil, fmt.Errorf("event %s: RETURN group %d has arity %d, want %d (groups must be union compatible)",
				stmt.Name, g+1, len(group), arity)
		}
	}

	r := &Recognizer{stmt: stmt, funcs: funcs, state: -1}

	// Output schema from the first group's names.
	cols := make([]relation.Column, arity)
	for i, item := range stmt.Return[0] {
		cols[i] = relation.Col(item.OutName(), relation.KindNull)
	}
	r.schema = relation.NewSchema(cols...)

	// Classify WHERE predicates.
	r.plainFilters = make([][]expr.Expr, len(stmt.Seq))
	for _, f := range stmt.Filters {
		if f.Quant == parser.QuantNone {
			pos, err := singleAliasOf(f.Cond, aliasPos)
			if err != nil {
				return nil, fmt.Errorf("event %s: %w", stmt.Name, err)
			}
			r.plainFilters[pos] = append(r.plainFilters[pos], f.Cond)
			continue
		}
		pos, ok := aliasPos[strings.ToLower(f.Over)]
		if !ok {
			return nil, fmt.Errorf("event %s: quantifier over unknown alias %q", stmt.Name, f.Over)
		}
		q := quantPred{
			forall:  f.Quant == parser.QuantForall,
			varName: f.Var,
			overPos: pos,
			cond:    f.Cond,
		}
		if !q.forall {
			q.index = len(r.exists)
			r.exists = append(r.exists, false)
		}
		r.quants = append(r.quants, q)
	}

	// Emission positions per RETURN group.
	r.returnAt = make([]int, len(stmt.Return))
	for g, group := range stmt.Return {
		maxPos := -1
		for _, item := range group {
			for _, c := range expr.Columns(item.Expr) {
				if c.Qualifier == "" {
					continue
				}
				pos, ok := aliasPos[strings.ToLower(c.Qualifier)]
				if !ok {
					return nil, fmt.Errorf("event %s: RETURN references unknown alias %q", stmt.Name, c.Qualifier)
				}
				if pos > maxPos {
					maxPos = pos
				}
			}
		}
		if maxPos < 0 {
			// Constant-only group: fires on the first element.
			maxPos = 0
		}
		r.returnAt[g] = maxPos
	}
	return r, nil
}

// singleAliasOf checks that a plain predicate references exactly one
// sequence alias (per the paper, plain predicates are per-event filters).
func singleAliasOf(e expr.Expr, aliasPos map[string]int) (int, error) {
	pos := -1
	for _, c := range expr.Columns(e) {
		if c.Qualifier == "" {
			return 0, fmt.Errorf("per-event predicate %s must qualify columns with an event alias", e.String())
		}
		p, ok := aliasPos[strings.ToLower(c.Qualifier)]
		if !ok {
			return 0, fmt.Errorf("predicate references unknown alias %q", c.Qualifier)
		}
		if pos >= 0 && p != pos {
			return 0, fmt.Errorf("per-event predicate %s spans multiple aliases; use FORALL/EXISTS for cross-event conditions", e.String())
		}
		pos = p
	}
	if pos < 0 {
		return 0, fmt.Errorf("predicate %s references no event alias", e.String())
	}
	return pos, nil
}

// Name returns the compound event table's name.
func (r *Recognizer) Name() string { return r.stmt.Name }

// Schema returns the compound event table's schema (from the first RETURN
// group).
func (r *Recognizer) Schema() relation.Schema { return r.schema }

// Active reports whether an interaction transaction is in flight.
func (r *Recognizer) Active() bool { return r.active }

// FirstType returns the event type that starts the pattern; the engine's
// static analysis uses it to flag ambiguous interaction pairs.
func (r *Recognizer) FirstType() string { return r.stmt.Seq[0].Type }

// Reset aborts any in-flight match and returns to the idle state.
func (r *Recognizer) Reset() {
	r.active = false
	r.state = -1
	r.bindings = nil
	for i := range r.exists {
		r.exists[i] = false
	}
}

// Feed advances the NFA with one low-level event. See Actions for what the
// caller must apply to storage. Feed is deterministic: identical event
// streams produce identical action sequences.
func (r *Recognizer) Feed(ev Event) (Actions, error) {
	var acts Actions

	pos, ok := r.matchPosition(ev)
	if !ok {
		acts.Filtered = true
		return acts, nil
	}
	// Per-event plain filters: failure drops the event from the stream
	// before the NFA sees it (§2.1.2).
	passed, err := r.passesPlainFilters(pos, ev)
	if err != nil {
		return acts, err
	}
	if !passed {
		acts.Filtered = true
		return acts, nil
	}

	if !r.active {
		r.active = true
		r.bindings = make(map[string]Event, len(r.stmt.Seq))
		for i := range r.exists {
			r.exists[i] = false
		}
		acts.Began = true
	}

	r.state = pos
	r.bindings[strings.ToLower(r.stmt.Seq[pos].Alias)] = ev

	// Quantified predicates over this position.
	for qi := range r.quants {
		q := &r.quants[qi]
		if q.overPos != pos {
			continue
		}
		holds, err := r.evalQuant(q, ev)
		if err != nil {
			return acts, err
		}
		if q.forall && !holds {
			// Reject state: abort the interaction transaction.
			r.Reset()
			acts.Aborted = true
			return acts, nil
		}
		if !q.forall && holds {
			r.exists[q.index] = true
		}
	}

	// Emit RETURN groups anchored at this position.
	for g, at := range r.returnAt {
		if at != pos {
			continue
		}
		row, err := r.evalGroup(g)
		if err != nil {
			return acts, err
		}
		acts.Rows = append(acts.Rows, row)
	}

	// Accept?
	if pos == len(r.stmt.Seq)-1 {
		for qi := range r.quants {
			q := &r.quants[qi]
			if !q.forall && !r.exists[q.index] {
				r.Reset()
				acts.Aborted = true
				return acts, nil
			}
		}
		r.Reset()
		acts.Committed = true
	}
	return acts, nil
}

// matchPosition finds the sequence position this event matches given the
// current state. Candidates are: the current element again if it is Kleene
// (self-loop), then subsequent elements, where Kleene elements may be
// skipped (zero repetitions) but the first non-Kleene element is a barrier.
// Events matching no candidate are filtered.
func (r *Recognizer) matchPosition(ev Event) (int, bool) {
	var start int
	switch {
	case !r.active:
		start = 0
	case r.stmt.Seq[r.state].Kleene:
		start = r.state
	default:
		start = r.state + 1
	}
	for i := start; i < len(r.stmt.Seq); i++ {
		if r.stmt.Seq[i].Type == ev.Type {
			return i, true
		}
		if !r.stmt.Seq[i].Kleene {
			break // a required element cannot be skipped
		}
	}
	return 0, false
}

func (r *Recognizer) passesPlainFilters(pos int, ev Event) (bool, error) {
	if len(r.plainFilters[pos]) == 0 {
		return true, nil
	}
	env := &eventEnv{
		bindings: map[string]Event{strings.ToLower(r.stmt.Seq[pos].Alias): ev},
	}
	ctx := &expr.Context{Row: env, Funcs: r.funcs}
	for _, f := range r.plainFilters[pos] {
		v, err := f.Eval(ctx)
		if err != nil {
			return false, fmt.Errorf("event %s filter %s: %w", r.stmt.Name, f.String(), err)
		}
		if v.IsNull() || !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

func (r *Recognizer) evalQuant(q *quantPred, ev Event) (bool, error) {
	env := &eventEnv{bindings: r.bindings, extraName: strings.ToLower(q.varName), extra: ev}
	ctx := &expr.Context{Row: env, Funcs: r.funcs}
	v, err := q.cond.Eval(ctx)
	if err != nil {
		return false, fmt.Errorf("event %s quantifier %s: %w", r.stmt.Name, q.cond.String(), err)
	}
	return !v.IsNull() && v.Truthy(), nil
}

func (r *Recognizer) evalGroup(g int) (relation.Tuple, error) {
	env := &eventEnv{bindings: r.bindings}
	ctx := &expr.Context{Row: env, Funcs: r.funcs}
	group := r.stmt.Return[g]
	row := make(relation.Tuple, len(group))
	for i, item := range group {
		v, err := item.Expr.Eval(ctx)
		if err != nil {
			return nil, fmt.Errorf("event %s RETURN item %s: %w", r.stmt.Name, item.Expr.String(), err)
		}
		row[i] = v
	}
	return row, nil
}

// eventEnv resolves alias.attr references against the current bindings; an
// optional extra binding serves quantifier variables.
type eventEnv struct {
	bindings  map[string]Event
	extraName string
	extra     Event
}

// Lookup resolves "alias.attr"; bare names are not resolvable in event
// context (the compiler enforces qualification).
func (e *eventEnv) Lookup(q, n string) (relation.Value, bool) {
	if q == "" {
		return relation.Null(), false
	}
	lq := strings.ToLower(q)
	if e.extraName != "" && lq == e.extraName {
		return e.extra.Attr(n)
	}
	ev, ok := e.bindings[lq]
	if !ok {
		return relation.Null(), false
	}
	return ev.Attr(n)
}
