package events

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/relation"
)

// deVIL2 is the paper's DeVIL 2 listing, verbatim.
const deVIL2 = `
C =
 EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
 WHERE FORALL m IN M m.y > 5
 RETURN
   (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
   (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy)`

func compileSrc(t *testing.T, src string) *Recognizer {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := stmts[0].(*parser.EventStmt)
	if !ok {
		t.Fatalf("statement is %T", stmts[0])
	}
	r, err := Compile(ev, expr.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func feed(t *testing.T, r *Recognizer, ev Event) Actions {
	t.Helper()
	acts, err := r.Feed(ev)
	if err != nil {
		t.Fatalf("feed %s: %v", ev, err)
	}
	return acts
}

func intRow(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Int(v)
	}
	return t
}

// TestTable1Verbatim replays the exact event sequence of Table 1 and asserts
// the exact contents of the compound event table C.
func TestTable1Verbatim(t *testing.T) {
	r := compileSrc(t, deVIL2)
	if r.Name() != "C" {
		t.Fatalf("name = %s", r.Name())
	}
	if names := r.Schema().Names(); len(names) != 5 ||
		names[0] != "t" || names[1] != "x" || names[2] != "y" ||
		names[3] != "dx" || names[4] != "dy" {
		t.Fatalf("schema names = %v", names)
	}

	var table []relation.Tuple

	// MOUSE_DOWN(0,5,15) inserts the first record and begins the txn.
	acts := feed(t, r, Mouse(MouseDown, 0, 5, 15))
	if !acts.Began {
		t.Fatal("down should begin the transaction")
	}
	if len(acts.Rows) != 1 {
		t.Fatalf("down emitted %d rows, want 1", len(acts.Rows))
	}
	table = append(table, acts.Rows...)

	// MOUSE_MOVE(1,6,17) inserts (1,5,15,1,2).
	acts = feed(t, r, Mouse(MouseMove, 1, 6, 17))
	if acts.Began || acts.Committed || acts.Aborted {
		t.Fatalf("move actions = %+v", acts)
	}
	if len(acts.Rows) != 1 {
		t.Fatalf("move emitted %d rows", len(acts.Rows))
	}
	table = append(table, acts.Rows...)

	// ... more MOUSE_MOVE events ... (the paper elides them; we add one
	// intermediate move to exercise the Kleene loop)
	acts = feed(t, r, Mouse(MouseMove, 20, 8, 12))
	table = append(table, acts.Rows...)

	// MOUSE_MOVE(40,10,10) inserts (40,5,15,5,-5).
	acts = feed(t, r, Mouse(MouseMove, 40, 10, 10))
	table = append(table, acts.Rows...)

	// MOUSE_UP(41,10,10) terminates the query: commits, inserts nothing.
	acts = feed(t, r, Mouse(MouseUp, 41, 10, 10))
	if !acts.Committed {
		t.Fatal("up should commit")
	}
	if len(acts.Rows) != 0 {
		t.Fatalf("up emitted %d rows, want 0 (U appears in no projection)", len(acts.Rows))
	}
	if r.Active() {
		t.Fatal("recognizer should be idle after commit")
	}

	want := []relation.Tuple{
		intRow(0, 5, 15, 0, 0),
		intRow(1, 5, 15, 1, 2),
		intRow(20, 5, 15, 3, -3),
		intRow(40, 5, 15, 5, -5),
	}
	if len(table) != len(want) {
		t.Fatalf("C has %d rows, want %d", len(table), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !table[i][c].Equal(want[i][c]) {
				t.Errorf("C[%d][%d] = %s, want %s", i, c, table[i][c], want[i][c])
			}
		}
	}
}

// TestForallReject: a move with y <= 5 violates FORALL and aborts the
// transaction (the NFA's reject state).
func TestForallReject(t *testing.T) {
	r := compileSrc(t, deVIL2)
	feed(t, r, Mouse(MouseDown, 0, 5, 15))
	acts := feed(t, r, Mouse(MouseMove, 1, 6, 3)) // y=3 violates m.y > 5
	if !acts.Aborted {
		t.Fatal("FORALL violation should abort")
	}
	if r.Active() {
		t.Fatal("recognizer should be idle after abort")
	}
	// A new interaction can begin cleanly afterwards.
	acts = feed(t, r, Mouse(MouseDown, 10, 1, 20))
	if !acts.Began {
		t.Fatal("new interaction should begin after abort")
	}
}

// TestNonMatchingTypesFiltered: key presses are not in the pattern alphabet
// and must be filtered without disturbing the match.
func TestNonMatchingTypesFiltered(t *testing.T) {
	r := compileSrc(t, deVIL2)
	feed(t, r, Mouse(MouseDown, 0, 5, 15))
	acts := feed(t, r, Key(1, "a"))
	if !acts.Filtered {
		t.Fatal("key press should be filtered")
	}
	if !r.Active() {
		t.Fatal("filtered event must not abort the match")
	}
	acts = feed(t, r, Mouse(MouseUp, 2, 5, 15))
	if !acts.Committed {
		t.Fatal("drag should still commit after filtered event")
	}
}

// TestIdleMidPatternFiltered: move/up while idle never starts a transaction.
func TestIdleMidPatternFiltered(t *testing.T) {
	r := compileSrc(t, deVIL2)
	for _, ev := range []Event{Mouse(MouseMove, 0, 1, 10), Mouse(MouseUp, 1, 1, 10)} {
		acts := feed(t, r, ev)
		if !acts.Filtered || acts.Began {
			t.Fatalf("%s while idle: %+v", ev, acts)
		}
	}
}

// TestZeroMoves: a click (down immediately followed by up) matches with zero
// Kleene repetitions.
func TestZeroMoves(t *testing.T) {
	r := compileSrc(t, deVIL2)
	feed(t, r, Mouse(MouseDown, 0, 5, 15))
	acts := feed(t, r, Mouse(MouseUp, 1, 5, 15))
	if !acts.Committed {
		t.Fatal("zero-move drag should commit")
	}
}

// TestPlainPredicateFilters: per-event predicates drop events from the input
// stream without transitioning the NFA. The paper's example: D.y > 20
// removes mouse down events below 20 pixels.
func TestPlainPredicateFilters(t *testing.T) {
	src := `
C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U
    WHERE D.y > 20
    RETURN (D.t, D.x, D.y)`
	r := compileSrc(t, src)
	acts := feed(t, r, Mouse(MouseDown, 0, 5, 10)) // y=10 fails D.y > 20
	if !acts.Filtered || acts.Began {
		t.Fatalf("down failing filter: %+v", acts)
	}
	acts = feed(t, r, Mouse(MouseDown, 1, 5, 30))
	if !acts.Began {
		t.Fatal("down passing filter should begin")
	}
	acts = feed(t, r, Mouse(MouseUp, 2, 5, 30))
	if !acts.Committed {
		t.Fatal("should commit")
	}
}

// TestExistsQuantifier: EXISTS must be satisfied by accept time or the
// transaction aborts.
func TestExistsQuantifier(t *testing.T) {
	src := `
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    WHERE EXISTS m IN M m.x > 100
    RETURN (D.t)`
	r := compileSrc(t, src)

	// No move crosses x>100: abort at accept.
	feed(t, r, Mouse(MouseDown, 0, 0, 0))
	feed(t, r, Mouse(MouseMove, 1, 50, 0))
	acts := feed(t, r, Mouse(MouseUp, 2, 50, 0))
	if !acts.Aborted || acts.Committed {
		t.Fatalf("unsatisfied EXISTS: %+v", acts)
	}

	// One move crosses: commit.
	feed(t, r, Mouse(MouseDown, 10, 0, 0))
	feed(t, r, Mouse(MouseMove, 11, 150, 0))
	acts = feed(t, r, Mouse(MouseUp, 12, 150, 0))
	if !acts.Committed {
		t.Fatalf("satisfied EXISTS: %+v", acts)
	}
}

// TestCompileRejectsTrailingKleene: sequences must end with a non-repeating
// event (§2.1.2's never-ending transaction constraint).
func TestCompileRejectsTrailingKleene(t *testing.T) {
	src := `C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M RETURN (D.t)`
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(stmts[0].(*parser.EventStmt), expr.NewRegistry()); err == nil {
		t.Fatal("trailing Kleene element should be rejected")
	}
}

// TestCompileRejectsArityMismatch: RETURN groups must be union compatible.
func TestCompileRejectsArityMismatch(t *testing.T) {
	src := `C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t), (U.t, U.x)`
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(stmts[0].(*parser.EventStmt), expr.NewRegistry()); err == nil {
		t.Fatal("arity mismatch should be rejected")
	}
}

// TestCompileRejectsCrossAliasPlainPredicate: plain predicates are
// per-event; cross-event conditions need quantifiers.
func TestCompileRejectsCrossAliasPlainPredicate(t *testing.T) {
	src := `C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U WHERE U.x > D.x RETURN (D.t)`
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(stmts[0].(*parser.EventStmt), expr.NewRegistry()); err == nil {
		t.Fatal("cross-alias plain predicate should be rejected")
	}
}

// TestRepeatedInteractions: the recognizer handles many sequential drags.
func TestRepeatedInteractions(t *testing.T) {
	r := compileSrc(t, deVIL2)
	for k := 0; k < 10; k++ {
		base := int64(k * 100)
		var committed bool
		for _, ev := range Drag(base, 0, 10, 50, 40, 5) {
			acts := feed(t, r, ev)
			if acts.Committed {
				committed = true
			}
		}
		if !committed {
			t.Fatalf("drag %d did not commit", k)
		}
	}
}

// TestDragHelperShape sanity-checks the synthetic drag generator used across
// benchmarks.
func TestDragHelperShape(t *testing.T) {
	s := Drag(0, 0, 0, 100, 100, 9)
	if len(s) != 11 {
		t.Fatalf("drag length = %d", len(s))
	}
	if s[0].Type != MouseDown || s[len(s)-1].Type != MouseUp {
		t.Fatal("drag must start with down and end with up")
	}
	for i := 1; i < len(s); i++ {
		if s[i].T <= s[i-1].T {
			t.Fatal("timestamps must be strictly increasing")
		}
	}
}

// TestResetMidMatch: Reset aborts in-flight state so a fresh match can start.
func TestResetMidMatch(t *testing.T) {
	r := compileSrc(t, deVIL2)
	feed(t, r, Mouse(MouseDown, 0, 5, 15))
	if !r.Active() {
		t.Fatal("should be active")
	}
	r.Reset()
	if r.Active() {
		t.Fatal("should be idle after reset")
	}
	acts := feed(t, r, Mouse(MouseDown, 1, 5, 15))
	if !acts.Began {
		t.Fatal("fresh match should begin after reset")
	}
}

func TestFirstType(t *testing.T) {
	r := compileSrc(t, deVIL2)
	if r.FirstType() != MouseDown {
		t.Fatalf("first type = %s", r.FirstType())
	}
}

// TestMultipleKleeneElements: a pattern with two consecutive Kleene
// elements (move-drag with optional hover settling) — both may match zero
// or more events, and either may be skipped entirely.
func TestMultipleKleeneElements(t *testing.T) {
	src := `C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, HOVER* AS H, MOUSE_UP AS U
	       RETURN (D.t, 0 AS kind),
	              (M.t, 1 AS kind),
	              (H.t, 2 AS kind)`
	r := compileSrc(t, src)

	// moves then hovers then up
	feed(t, r, Mouse(MouseDown, 0, 1, 10))
	feed(t, r, Mouse(MouseMove, 1, 2, 10))
	feed(t, r, Mouse(Hover, 2, 2, 10))
	acts := feed(t, r, Mouse(MouseUp, 3, 2, 10))
	if !acts.Committed {
		t.Fatal("full pattern should commit")
	}

	// both Kleene groups skipped: down then up
	feed(t, r, Mouse(MouseDown, 10, 1, 10))
	acts = feed(t, r, Mouse(MouseUp, 11, 1, 10))
	if !acts.Committed {
		t.Fatal("zero-repetition pattern should commit")
	}

	// a move AFTER a hover cannot re-enter the earlier Kleene element:
	// it is filtered, and the pattern still completes.
	feed(t, r, Mouse(MouseDown, 20, 1, 10))
	feed(t, r, Mouse(Hover, 21, 1, 10))
	acts = feed(t, r, Mouse(MouseMove, 22, 2, 10))
	if !acts.Filtered {
		t.Fatalf("move after hover should be filtered: %+v", acts)
	}
	acts = feed(t, r, Mouse(MouseUp, 23, 2, 10))
	if !acts.Committed {
		t.Fatal("pattern should still commit after the filtered event")
	}
}

// TestEmissionOrderWithinEvent: multiple RETURN groups anchored to the same
// position emit rows in group order.
func TestEmissionOrderWithinEvent(t *testing.T) {
	src := `C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U
	       RETURN (D.t, 1 AS tag), (D.t, 2 AS tag)`
	r := compileSrc(t, src)
	acts := feed(t, r, Mouse(MouseDown, 0, 5, 5))
	if len(acts.Rows) != 2 {
		t.Fatalf("rows = %d", len(acts.Rows))
	}
	t1, _ := acts.Rows[0][1].AsInt()
	t2, _ := acts.Rows[1][1].AsInt()
	if t1 != 1 || t2 != 2 {
		t.Fatalf("emission order = %d, %d", t1, t2)
	}
}
