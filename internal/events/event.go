// Package events implements DVMS's Event Recognizer (Fig 3): low-level user
// input events modeled as CQL-style streams, and compound events extracted
// by a SASE-style NFA compiled from DeVIL EVENT statements (§2.1.2).
//
// The recognizer also defines interaction transaction boundaries: the NFA's
// start state begins a transaction, the accept state commits it, and reject
// states (failed FORALL/EXISTS quantifiers) abort it.
package events

import (
	"fmt"

	"repro/internal/relation"
)

// Standard low-level event types used throughout the repository. Any
// uppercase identifier is a legal type; these are the ones the paper's
// examples use.
const (
	MouseDown = "MOUSE_DOWN"
	MouseMove = "MOUSE_MOVE"
	MouseUp   = "MOUSE_UP"
	KeyPress  = "KEY_PRESS"
	Hover     = "HOVER"
)

// Event is one low-level input event: an ⟨s, t⟩ pair from the paper's CQL
// stream model, with the payload attributes of the event type.
type Event struct {
	Type  string
	T     int64 // timestamp (ms in examples; any monotone unit works)
	Attrs map[string]relation.Value
}

// Mouse constructs a mouse event with x/y payload, the shape used by
// MOUSE_DOWN / MOUSE_MOVE / MOUSE_UP / HOVER.
func Mouse(typ string, t, x, y int64) Event {
	return Event{Type: typ, T: t, Attrs: map[string]relation.Value{
		"x": relation.Int(x),
		"y": relation.Int(y),
	}}
}

// Key constructs a KEY_PRESS event.
func Key(t int64, key string) Event {
	return Event{Type: KeyPress, T: t, Attrs: map[string]relation.Value{
		"key": relation.String(key),
	}}
}

// Attr returns a payload attribute; "t" resolves to the timestamp.
func (e Event) Attr(name string) (relation.Value, bool) {
	if name == "t" {
		return relation.Int(e.T), true
	}
	v, ok := e.Attrs[name]
	return v, ok
}

// String renders the event compactly.
func (e Event) String() string {
	if x, ok := e.Attrs["x"]; ok {
		y := e.Attrs["y"]
		return fmt.Sprintf("%s(%d,%s,%s)", e.Type, e.T, x, y)
	}
	return fmt.Sprintf("%s(%d)", e.Type, e.T)
}

// Stream is an ordered sequence of events, used by workload generators and
// tests.
type Stream []Event

// Drag builds the canonical mouse-drag stream: down at (x0,y0), moves along
// the interpolated path, up at (x1,y1), with one time unit per event
// starting at t0.
func Drag(t0, x0, y0, x1, y1 int64, moves int) Stream {
	s := Stream{Mouse(MouseDown, t0, x0, y0)}
	t := t0
	for i := 1; i <= moves; i++ {
		t++
		x := x0 + (x1-x0)*int64(i)/int64(moves+1)
		y := y0 + (y1-y0)*int64(i)/int64(moves+1)
		s = append(s, Mouse(MouseMove, t, x, y))
	}
	s = append(s, Mouse(MouseUp, t+1, x1, y1))
	return s
}
