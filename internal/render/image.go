// Package render is the rendering substrate of DVMS: a software rasterizer
// that maps marks relations (circles, rectangles, lines, text) onto the
// pixels relation P(x, y, RGBA) of §2.1.1.
//
// The paper's prototype renders to DOM SVG/canvas; here an in-memory
// framebuffer plays that role (see DESIGN.md substitutions), which lets
// tests make pixel-level assertions and lets the pixels table be exported
// as an actual relation on demand.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strconv"
	"strings"
)

// RGBA is one pixel's color with straight (non-premultiplied) alpha.
type RGBA struct {
	R, G, B, A uint8
}

// Common colors used by the paper's examples (gray/red linked brushing,
// green/gray crossfilter bars).
var namedColors = map[string]RGBA{
	"black":     {0, 0, 0, 255},
	"white":     {255, 255, 255, 255},
	"gray":      {128, 128, 128, 255},
	"grey":      {128, 128, 128, 255},
	"lightgray": {211, 211, 211, 255},
	"darkgray":  {80, 80, 80, 255},
	"red":       {220, 50, 47, 255},
	"green":     {70, 160, 70, 255},
	"blue":      {60, 100, 200, 255},
	"orange":    {230, 140, 30, 255},
	"steelblue": {70, 130, 180, 255},
	"purple":    {128, 0, 128, 255},
	"yellow":    {240, 220, 60, 255},
	"none":      {0, 0, 0, 0},
	"":          {0, 0, 0, 0},
}

// ParseColor resolves a named color or "#RRGGBB"/"#RRGGBBAA" hex form.
func ParseColor(s string) (RGBA, error) {
	if c, ok := namedColors[strings.ToLower(strings.TrimSpace(s))]; ok {
		return c, nil
	}
	h := strings.TrimPrefix(strings.TrimSpace(s), "#")
	if len(h) == 6 || len(h) == 8 {
		v, err := strconv.ParseUint(h, 16, 64)
		if err == nil {
			c := RGBA{A: 255}
			if len(h) == 8 {
				c.A = uint8(v & 0xff)
				v >>= 8
			}
			c.B = uint8(v & 0xff)
			c.G = uint8((v >> 8) & 0xff)
			c.R = uint8((v >> 16) & 0xff)
			return c, nil
		}
	}
	return RGBA{}, fmt.Errorf("unknown color %q", s)
}

// Image is a W×H framebuffer with a white background, matching the screen
// the pixels relation models.
type Image struct {
	W, H int
	Pix  []RGBA
}

// NewImage allocates a white image.
func NewImage(w, h int) *Image {
	img := &Image{W: w, H: h, Pix: make([]RGBA, w*h)}
	img.Clear()
	return img
}

// Clear resets the image to opaque white. Seed a short prefix, then double
// it with copy — memmove-speed instead of a per-pixel store loop (Clear runs
// on every render pass, so it is on the per-event path).
func (im *Image) Clear() {
	if len(im.Pix) == 0 {
		return
	}
	white := RGBA{255, 255, 255, 255}
	im.Pix[0] = white
	for n := 1; n < len(im.Pix); n *= 2 {
		copy(im.Pix[n:], im.Pix[:n])
	}
}

// In reports whether the coordinate lies inside the framebuffer.
func (im *Image) In(x, y int) bool { return x >= 0 && x < im.W && y >= 0 && y < im.H }

// At returns the pixel at (x, y); out-of-bounds reads return transparent.
func (im *Image) At(x, y int) RGBA {
	if !im.In(x, y) {
		return RGBA{}
	}
	return im.Pix[y*im.W+x]
}

// Blend composites src over the pixel at (x, y) with straight alpha.
// Out-of-bounds writes are ignored, which keeps mark drawing safe at the
// viewport edges.
func (im *Image) Blend(x, y int, src RGBA) {
	if !im.In(x, y) || src.A == 0 {
		return
	}
	if src.A == 255 {
		im.Pix[y*im.W+x] = src
		return
	}
	dst := im.Pix[y*im.W+x]
	a := uint32(src.A)
	ia := 255 - a
	im.Pix[y*im.W+x] = RGBA{
		R: uint8((uint32(src.R)*a + uint32(dst.R)*ia) / 255),
		G: uint8((uint32(src.G)*a + uint32(dst.G)*ia) / 255),
		B: uint8((uint32(src.B)*a + uint32(dst.B)*ia) / 255),
		A: 255,
	}
}

// FillCircle rasterizes a filled disc centered at (cx, cy).
func (im *Image) FillCircle(cx, cy, r float64, fill RGBA) {
	if fill.A == 0 || r <= 0 {
		return
	}
	x0, x1 := int(math.Floor(cx-r)), int(math.Ceil(cx+r))
	y0, y1 := int(math.Floor(cy-r)), int(math.Ceil(cy+r))
	r2 := r * r
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)+0.5-cx, float64(y)+0.5-cy
			if dx*dx+dy*dy <= r2 {
				im.Blend(x, y, fill)
			}
		}
	}
}

// StrokeCircle rasterizes a one-pixel circle outline.
func (im *Image) StrokeCircle(cx, cy, r float64, stroke RGBA) {
	if stroke.A == 0 || r <= 0 {
		return
	}
	steps := int(math.Ceil(2 * math.Pi * r))
	if steps < 8 {
		steps = 8
	}
	for i := 0; i < steps; i++ {
		a := 2 * math.Pi * float64(i) / float64(steps)
		im.Blend(int(cx+r*math.Cos(a)), int(cy+r*math.Sin(a)), stroke)
	}
}

// FillRect rasterizes a filled axis-aligned rectangle. The extent is
// clipped to the viewport before iterating — data-driven marks (e.g. bars
// whose height tracks an aggregate) can dwarf the framebuffer, and the
// off-screen pixels Blend would reject one by one must not cost per-pixel
// work. Opaque fills write rows directly (same pixels Blend would produce).
func (im *Image) FillRect(x, y, w, h float64, fill RGBA) {
	if fill.A == 0 || w <= 0 || h <= 0 {
		return
	}
	x0, x1 := int(math.Floor(x)), int(math.Ceil(x+w))
	y0, y1 := int(math.Floor(y)), int(math.Ceil(y+h))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	if x0 >= x1 || y0 >= y1 {
		return
	}
	if fill.A == 255 {
		// Solid fill: write the first row pixel by pixel, then replicate it
		// into the remaining rows with copy.
		first := im.Pix[y0*im.W+x0 : y0*im.W+x1]
		for i := range first {
			first[i] = fill
		}
		for yy := y0 + 1; yy < y1; yy++ {
			copy(im.Pix[yy*im.W+x0:yy*im.W+x1], first)
		}
		return
	}
	for yy := y0; yy < y1; yy++ {
		for xx := x0; xx < x1; xx++ {
			im.Blend(xx, yy, fill)
		}
	}
}

// StrokeRect rasterizes a one-pixel rectangle outline.
func (im *Image) StrokeRect(x, y, w, h float64, stroke RGBA) {
	if stroke.A == 0 {
		return
	}
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	x1, y1 := int(math.Ceil(x+w))-1, int(math.Ceil(y+h))-1
	for xx := x0; xx <= x1; xx++ {
		im.Blend(xx, y0, stroke)
		im.Blend(xx, y1, stroke)
	}
	for yy := y0; yy <= y1; yy++ {
		im.Blend(x0, yy, stroke)
		im.Blend(x1, yy, stroke)
	}
}

// DrawLine rasterizes a line segment with Bresenham's algorithm.
func (im *Image) DrawLine(x1, y1, x2, y2 int, c RGBA) {
	dx := abs(x2 - x1)
	dy := -abs(y2 - y1)
	sx, sy := 1, 1
	if x1 > x2 {
		sx = -1
	}
	if y1 > y2 {
		sy = -1
	}
	err := dx + dy
	for {
		im.Blend(x1, y1, c)
		if x1 == x2 && y1 == y2 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x1 += sx
		}
		if e2 <= dx {
			err += dx
			y1 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DrawText renders a string with the builtin 3×5 bitmap font at (x, y)
// (top-left anchored). Unsupported runes render as a box.
func (im *Image) DrawText(x, y int, s string, c RGBA) {
	for _, r := range strings.ToUpper(s) {
		glyph, ok := font3x5[r]
		if !ok {
			glyph = font3x5['?']
		}
		for row := 0; row < 5; row++ {
			for col := 0; col < 3; col++ {
				if glyph[row]&(1<<(2-col)) != 0 {
					im.Blend(x+col, y+row, c)
				}
			}
		}
		x += 4
	}
}

// font3x5 is a minimal bitmap font: each glyph is five rows of three bits.
var font3x5 = map[rune][5]uint8{
	'0': {0b111, 0b101, 0b101, 0b101, 0b111},
	'1': {0b010, 0b110, 0b010, 0b010, 0b111},
	'2': {0b111, 0b001, 0b111, 0b100, 0b111},
	'3': {0b111, 0b001, 0b111, 0b001, 0b111},
	'4': {0b101, 0b101, 0b111, 0b001, 0b001},
	'5': {0b111, 0b100, 0b111, 0b001, 0b111},
	'6': {0b111, 0b100, 0b111, 0b101, 0b111},
	'7': {0b111, 0b001, 0b010, 0b010, 0b010},
	'8': {0b111, 0b101, 0b111, 0b101, 0b111},
	'9': {0b111, 0b101, 0b111, 0b001, 0b111},
	'A': {0b010, 0b101, 0b111, 0b101, 0b101},
	'B': {0b110, 0b101, 0b110, 0b101, 0b110},
	'C': {0b011, 0b100, 0b100, 0b100, 0b011},
	'D': {0b110, 0b101, 0b101, 0b101, 0b110},
	'E': {0b111, 0b100, 0b110, 0b100, 0b111},
	'F': {0b111, 0b100, 0b110, 0b100, 0b100},
	'G': {0b011, 0b100, 0b101, 0b101, 0b011},
	'H': {0b101, 0b101, 0b111, 0b101, 0b101},
	'I': {0b111, 0b010, 0b010, 0b010, 0b111},
	'J': {0b001, 0b001, 0b001, 0b101, 0b010},
	'K': {0b101, 0b110, 0b100, 0b110, 0b101},
	'L': {0b100, 0b100, 0b100, 0b100, 0b111},
	'M': {0b101, 0b111, 0b111, 0b101, 0b101},
	'N': {0b101, 0b111, 0b111, 0b111, 0b101},
	'O': {0b010, 0b101, 0b101, 0b101, 0b010},
	'P': {0b110, 0b101, 0b110, 0b100, 0b100},
	'Q': {0b010, 0b101, 0b101, 0b011, 0b001},
	'R': {0b110, 0b101, 0b110, 0b110, 0b101},
	'S': {0b011, 0b100, 0b010, 0b001, 0b110},
	'T': {0b111, 0b010, 0b010, 0b010, 0b010},
	'U': {0b101, 0b101, 0b101, 0b101, 0b111},
	'V': {0b101, 0b101, 0b101, 0b101, 0b010},
	'W': {0b101, 0b101, 0b111, 0b111, 0b101},
	'X': {0b101, 0b101, 0b010, 0b101, 0b101},
	'Y': {0b101, 0b101, 0b010, 0b010, 0b010},
	'Z': {0b111, 0b001, 0b010, 0b100, 0b111},
	' ': {0, 0, 0, 0, 0},
	'-': {0, 0, 0b111, 0, 0},
	'.': {0, 0, 0, 0, 0b010},
	',': {0, 0, 0, 0b010, 0b100},
	':': {0, 0b010, 0, 0b010, 0},
	'?': {0b111, 0b001, 0b010, 0, 0b010},
	'%': {0b101, 0b001, 0b010, 0b100, 0b101},
	'/': {0b001, 0b001, 0b010, 0b100, 0b100},
}

// WritePNG encodes the framebuffer as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.Pix[y*im.W+x]
			out.SetRGBA(x, y, color.RGBA{p.R, p.G, p.B, p.A})
		}
	}
	return png.Encode(w, out)
}

// ASCII renders a down-sampled text view of the framebuffer for terminal
// output: each cell covers blockW×blockH pixels; non-background cells render
// a density character.
func (im *Image) ASCII(blockW, blockH int) string {
	if blockW < 1 {
		blockW = 1
	}
	if blockH < 1 {
		blockH = 1
	}
	var b strings.Builder
	ramp := []byte(" .:-=+*#%@")
	for y := 0; y < im.H; y += blockH {
		for x := 0; x < im.W; x += blockW {
			var ink float64
			var n int
			for yy := y; yy < y+blockH && yy < im.H; yy++ {
				for xx := x; xx < x+blockW && xx < im.W; xx++ {
					p := im.Pix[yy*im.W+xx]
					lum := 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
					ink += (255 - lum) / 255
					n++
				}
			}
			idx := int(ink / float64(n) * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NonBackgroundCount returns the number of pixels that differ from the white
// background, a cheap structural check used by tests and benchmarks.
func (im *Image) NonBackgroundCount() int {
	n := 0
	white := RGBA{255, 255, 255, 255}
	for _, p := range im.Pix {
		if p != white {
			n++
		}
	}
	return n
}
