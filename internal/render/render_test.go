package render

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestParseColor(t *testing.T) {
	c, err := ParseColor("red")
	if err != nil || c.A != 255 || c.R < 200 {
		t.Fatalf("red = %+v, %v", c, err)
	}
	c, err = ParseColor("#102030")
	if err != nil || c != (RGBA{0x10, 0x20, 0x30, 0xff}) {
		t.Fatalf("hex = %+v, %v", c, err)
	}
	c, err = ParseColor("#10203080")
	if err != nil || c.A != 0x80 {
		t.Fatalf("hex alpha = %+v, %v", c, err)
	}
	if _, err := ParseColor("notacolor"); err == nil {
		t.Fatal("bad color should error")
	}
	c, _ = ParseColor("none")
	if c.A != 0 {
		t.Fatal("none should be transparent")
	}
}

func TestBlendOpaqueAndAlpha(t *testing.T) {
	img := NewImage(4, 4)
	img.Blend(1, 1, RGBA{0, 0, 0, 255})
	if img.At(1, 1) != (RGBA{0, 0, 0, 255}) {
		t.Fatal("opaque blend failed")
	}
	// 50% black over white ≈ mid gray
	img.Blend(2, 2, RGBA{0, 0, 0, 128})
	got := img.At(2, 2)
	if got.R < 120 || got.R > 135 {
		t.Fatalf("alpha blend = %+v", got)
	}
	// out-of-bounds writes are safe no-ops
	img.Blend(-1, 0, RGBA{0, 0, 0, 255})
	img.Blend(100, 100, RGBA{0, 0, 0, 255})
}

func TestFillCircleGeometry(t *testing.T) {
	img := NewImage(40, 40)
	img.FillCircle(20, 20, 8, RGBA{0, 0, 0, 255})
	if img.At(20, 20) != (RGBA{0, 0, 0, 255}) {
		t.Fatal("center must be filled")
	}
	if img.At(20, 13) != (RGBA{0, 0, 0, 255}) {
		t.Fatal("point just inside radius must be filled")
	}
	if img.At(20, 5) == (RGBA{0, 0, 0, 255}) {
		t.Fatal("point outside radius must not be filled")
	}
	if img.At(2, 2) != (RGBA{255, 255, 255, 255}) {
		t.Fatal("far corner must stay white")
	}
}

func TestFillRectBounds(t *testing.T) {
	img := NewImage(20, 20)
	img.FillRect(5, 5, 4, 3, RGBA{10, 20, 30, 255})
	if img.At(5, 5) != (RGBA{10, 20, 30, 255}) || img.At(8, 7) != (RGBA{10, 20, 30, 255}) {
		t.Fatal("inside rect must be filled")
	}
	if img.At(9, 5) == (RGBA{10, 20, 30, 255}) || img.At(5, 8) == (RGBA{10, 20, 30, 255}) {
		t.Fatal("outside rect must not be filled")
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	img := NewImage(20, 20)
	img.DrawLine(2, 2, 17, 11, RGBA{0, 0, 0, 255})
	if img.At(2, 2) != (RGBA{0, 0, 0, 255}) || img.At(17, 11) != (RGBA{0, 0, 0, 255}) {
		t.Fatal("line endpoints must be drawn")
	}
}

func TestDrawTextProducesInk(t *testing.T) {
	img := NewImage(60, 10)
	img.DrawText(1, 1, "DVMS 42", RGBA{0, 0, 0, 255})
	if img.NonBackgroundCount() == 0 {
		t.Fatal("text should produce pixels")
	}
}

// Property: no drawing primitive ever panics, regardless of coordinates
// (marks routinely land partially outside the viewport).
func TestRasterizerBoundsSafety(t *testing.T) {
	img := NewImage(32, 32)
	f := func(cx, cy, r float64, x1, y1, x2, y2 int16) bool {
		img.FillCircle(cx, cy, clampF(r, -10, 50), RGBA{1, 2, 3, 200})
		img.StrokeCircle(cx, cy, clampF(r, -10, 50), RGBA{1, 2, 3, 200})
		img.FillRect(cx, cy, clampF(r, -10, 50), clampF(r, -10, 50), RGBA{1, 2, 3, 128})
		img.DrawLine(int(x1)%100, int(y1)%100, int(x2)%100, int(y2)%100, RGBA{0, 0, 0, 255})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v != v { // NaN
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func circleMarks() *relation.Relation {
	rel := relation.New("marks", relation.NewSchema(
		relation.Col("radius", relation.KindInt),
		relation.Col("stroke", relation.KindString),
		relation.Col("fill", relation.KindString),
		relation.Col("center_x", relation.KindFloat),
		relation.Col("center_y", relation.KindFloat),
		relation.Col("productId", relation.KindInt),
	))
	rel.MustAppend(relation.Tuple{
		relation.Int(5), relation.String("gray"), relation.String("gray"),
		relation.Float(10), relation.Float(10), relation.Int(1),
	})
	rel.MustAppend(relation.Tuple{
		relation.Int(5), relation.String("red"), relation.String("red"),
		relation.Float(30), relation.Float(20), relation.Int(2),
	})
	return rel
}

func TestInferMarkType(t *testing.T) {
	mt, err := InferMarkType(circleMarks().Schema)
	if err != nil || mt != MarkCircle {
		t.Fatalf("infer = %v, %v", mt, err)
	}
	rect := relation.NewSchema(
		relation.Col("x", relation.KindFloat), relation.Col("y", relation.KindFloat),
		relation.Col("width", relation.KindFloat), relation.Col("height", relation.KindFloat),
	)
	if mt, _ := InferMarkType(rect); mt != MarkRect {
		t.Fatalf("rect infer = %v", mt)
	}
	line := relation.NewSchema(
		relation.Col("x1", relation.KindFloat), relation.Col("y1", relation.KindFloat),
		relation.Col("x2", relation.KindFloat), relation.Col("y2", relation.KindFloat),
	)
	if mt, _ := InferMarkType(line); mt != MarkLine {
		t.Fatalf("line infer = %v", mt)
	}
	if _, err := InferMarkType(relation.NewSchema(relation.Col("z", relation.KindInt))); err == nil {
		t.Fatal("uninferrable schema should error")
	}
}

func TestParseMarkType(t *testing.T) {
	for in, want := range map[string]MarkType{
		"circle": MarkCircle, "POINT": MarkCircle, "rect": MarkRect,
		"bar": MarkRect, "line": MarkLine, "text": MarkText,
	} {
		mt, err := ParseMarkType(in)
		if err != nil || mt != want {
			t.Errorf("ParseMarkType(%q) = %v, %v", in, mt, err)
		}
	}
	if _, err := ParseMarkType("blob"); err == nil {
		t.Error("unknown mark type should error")
	}
}

func TestRenderMarksCircles(t *testing.T) {
	img := NewImage(50, 30)
	if err := RenderMarks(img, circleMarks(), MarkCircle); err != nil {
		t.Fatal(err)
	}
	gray := img.At(10, 10)
	if gray.R != 128 || gray.G != 128 {
		t.Fatalf("gray circle center = %+v", gray)
	}
	red := img.At(30, 20)
	if red.R < 200 || red.G > 100 {
		t.Fatalf("red circle center = %+v", red)
	}
}

func TestRenderMarksBars(t *testing.T) {
	rel := relation.New("bars", relation.NewSchema(
		relation.Col("x", relation.KindFloat),
		relation.Col("y", relation.KindFloat),
		relation.Col("width", relation.KindFloat),
		relation.Col("height", relation.KindFloat),
		relation.Col("fill", relation.KindString),
	))
	rel.MustAppend(relation.Tuple{
		relation.Float(2), relation.Float(10), relation.Float(6), relation.Float(15),
		relation.String("green"),
	})
	img := NewImage(20, 30)
	if err := RenderMarks(img, rel, MarkRect); err != nil {
		t.Fatal(err)
	}
	p := img.At(4, 15)
	if p.G < 100 || p.R > 100 {
		t.Fatalf("bar pixel = %+v", p)
	}
}

func TestPixelsRelationSparse(t *testing.T) {
	img := NewImage(10, 10)
	img.Blend(3, 4, RGBA{1, 2, 3, 255})
	rel := PixelsRelation(img, true)
	if rel.Len() != 1 {
		t.Fatalf("sparse pixels = %d rows", rel.Len())
	}
	row := rel.Rows[0]
	if x, _ := row[0].AsInt(); x != 3 {
		t.Fatalf("x = %v", row[0])
	}
	if y, _ := row[1].AsInt(); y != 4 {
		t.Fatalf("y = %v", row[1])
	}
	full := PixelsRelation(img, false)
	if full.Len() != 100 {
		t.Fatalf("full pixels = %d rows", full.Len())
	}
}

func TestWritePNG(t *testing.T) {
	img := NewImage(16, 16)
	img.FillCircle(8, 8, 5, RGBA{200, 0, 0, 255})
	var buf bytes.Buffer
	if err := img.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 50 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
		t.Fatalf("png output = %d bytes", buf.Len())
	}
}

func TestASCIIRendering(t *testing.T) {
	img := NewImage(20, 10)
	img.FillRect(0, 0, 20, 10, RGBA{0, 0, 0, 255})
	out := img.ASCII(2, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 || len(lines[0]) != 10 {
		t.Fatalf("ascii dims = %dx%d", len(lines[0]), len(lines))
	}
	if strings.ContainsRune(out, ' ') {
		t.Fatal("all-black image should have no blank cells")
	}
	img.Clear()
	out = img.ASCII(2, 2)
	if strings.Trim(out, " \n") != "" {
		t.Fatal("white image should render blank")
	}
}

func TestOpacityAttribute(t *testing.T) {
	rel := relation.New("m", relation.NewSchema(
		relation.Col("center_x", relation.KindFloat),
		relation.Col("center_y", relation.KindFloat),
		relation.Col("radius", relation.KindFloat),
		relation.Col("fill", relation.KindString),
		relation.Col("opacity", relation.KindFloat),
	))
	rel.MustAppend(relation.Tuple{
		relation.Float(5), relation.Float(5), relation.Float(3),
		relation.String("black"), relation.Float(0.5),
	})
	img := NewImage(10, 10)
	if err := RenderMarks(img, rel, MarkCircle); err != nil {
		t.Fatal(err)
	}
	p := img.At(5, 5)
	if p.R < 100 || p.R > 150 {
		t.Fatalf("half-opacity black over white = %+v, want mid gray", p)
	}
}
