package render

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// MarkType enumerates the mark relations of the visual domain (§2.1.1): each
// marks relation corresponds to one mark type with geometry and visual
// encoding attributes.
type MarkType uint8

// Supported mark types.
const (
	MarkCircle MarkType = iota
	MarkRect
	MarkLine
	MarkText
)

// String names the mark type as used in render(..., 'circle') calls.
func (m MarkType) String() string {
	switch m {
	case MarkCircle:
		return "circle"
	case MarkRect:
		return "rect"
	case MarkLine:
		return "line"
	default:
		return "text"
	}
}

// ParseMarkType resolves a mark type name.
func ParseMarkType(s string) (MarkType, error) {
	switch strings.ToLower(s) {
	case "circle", "point":
		return MarkCircle, nil
	case "rect", "bar", "rectangle":
		return MarkRect, nil
	case "line":
		return MarkLine, nil
	case "text", "label":
		return MarkText, nil
	default:
		return 0, fmt.Errorf("unknown mark type %q", s)
	}
}

// InferMarkType guesses the mark type from a marks relation's schema, the
// behaviour of the paper's render table UDF when no explicit type is given:
// center_x/center_y → circle, x/y/width/height → rect, x1/y1/x2/y2 → line,
// x/y/text → text.
func InferMarkType(s relation.Schema) (MarkType, error) {
	has := func(name string) bool { return s.Index("", name) >= 0 }
	switch {
	case has("center_x") && has("center_y"):
		return MarkCircle, nil
	case has("x1") && has("y1") && has("x2") && has("y2"):
		return MarkLine, nil
	case has("x") && has("y") && has("text"):
		return MarkText, nil
	case has("x") && has("y") && has("width") && has("height"):
		return MarkRect, nil
	default:
		return 0, fmt.Errorf("cannot infer mark type from schema %s", s)
	}
}

// markCol fetches a float attribute with a default.
func markCol(s relation.Schema, row relation.Tuple, name string, def float64) float64 {
	idx := s.Index("", name)
	if idx < 0 {
		return def
	}
	f, ok := row[idx].AsFloat()
	if !ok {
		return def
	}
	return f
}

func markColor(s relation.Schema, row relation.Tuple, name string, def RGBA) RGBA {
	idx := s.Index("", name)
	if idx < 0 {
		return def
	}
	c, err := ParseColor(row[idx].AsString())
	if err != nil {
		return def
	}
	return c
}

func markString(s relation.Schema, row relation.Tuple, name string) string {
	idx := s.Index("", name)
	if idx < 0 {
		return ""
	}
	return row[idx].AsString()
}

// applyOpacity scales a color's alpha by the mark's opacity attribute.
func applyOpacity(c RGBA, opacity float64) RGBA {
	if opacity >= 1 {
		return c
	}
	if opacity < 0 {
		opacity = 0
	}
	c.A = uint8(float64(c.A) * opacity)
	return c
}

// RenderMarks rasterizes every row of a marks relation onto the image. This
// is the render table UDF of §2.1.1: the only DeVIL UDF permitted visual
// side effects. Rows render in relation order (later marks paint over
// earlier ones).
func RenderMarks(img *Image, rel *relation.Relation, mt MarkType) error {
	s := rel.Schema
	for _, row := range rel.Rows {
		opacity := markCol(s, row, "opacity", 1)
		switch mt {
		case MarkCircle:
			cx := markCol(s, row, "center_x", 0)
			cy := markCol(s, row, "center_y", 0)
			r := markCol(s, row, "radius", 3)
			fill := applyOpacity(markColor(s, row, "fill", RGBA{128, 128, 128, 255}), opacity)
			stroke := applyOpacity(markColor(s, row, "stroke", RGBA{}), opacity)
			img.FillCircle(cx, cy, r, fill)
			img.StrokeCircle(cx, cy, r, stroke)
		case MarkRect:
			x := markCol(s, row, "x", 0)
			y := markCol(s, row, "y", 0)
			w := markCol(s, row, "width", 1)
			h := markCol(s, row, "height", 1)
			fill := applyOpacity(markColor(s, row, "fill", RGBA{128, 128, 128, 255}), opacity)
			stroke := applyOpacity(markColor(s, row, "stroke", RGBA{}), opacity)
			img.FillRect(x, y, w, h, fill)
			img.StrokeRect(x, y, w, h, stroke)
		case MarkLine:
			x1 := markCol(s, row, "x1", 0)
			y1 := markCol(s, row, "y1", 0)
			x2 := markCol(s, row, "x2", 0)
			y2 := markCol(s, row, "y2", 0)
			stroke := applyOpacity(markColor(s, row, "stroke", RGBA{0, 0, 0, 255}), opacity)
			img.DrawLine(int(x1), int(y1), int(x2), int(y2), stroke)
		case MarkText:
			x := markCol(s, row, "x", 0)
			y := markCol(s, row, "y", 0)
			fill := applyOpacity(markColor(s, row, "fill", RGBA{0, 0, 0, 255}), opacity)
			img.DrawText(int(x), int(y), markString(s, row, "text"), fill)
		}
	}
	return nil
}

// PixelsRelation exports the framebuffer as the pixels relation
// P(x, y, r, g, b, a) of §2.1.1. The paper notes P's contents are maintained
// by the rendering device and not materialized; this function materializes
// them on demand for analysis. With sparse=true only non-background pixels
// are emitted.
func PixelsRelation(img *Image, sparse bool) *relation.Relation {
	rel := relation.New("P", relation.NewSchema(
		relation.Col("x", relation.KindInt),
		relation.Col("y", relation.KindInt),
		relation.Col("r", relation.KindInt),
		relation.Col("g", relation.KindInt),
		relation.Col("b", relation.KindInt),
		relation.Col("a", relation.KindInt),
	))
	white := RGBA{255, 255, 255, 255}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			p := img.Pix[y*img.W+x]
			if sparse && p == white {
				continue
			}
			rel.MustAppend(relation.Tuple{
				relation.Int(int64(x)), relation.Int(int64(y)),
				relation.Int(int64(p.R)), relation.Int(int64(p.G)),
				relation.Int(int64(p.B)), relation.Int(int64(p.A)),
			})
		}
	}
	return rel
}
