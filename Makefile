# Build, verify, and benchmark targets. `make check` is the tier-1 gate
# (build + vet + tests); `make bench` records the executor perf trajectory
# that PERFORMANCE.md tracks across PRs.

GO ?= go

.PHONY: check build vet test bench bench-exec bench-engine

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the executor microbenchmarks with allocation stats and writes
# the experiment-series snapshot to BENCH_exec.json via cmd/dvms-bench.
bench: bench-exec bench-engine

bench-exec:
	$(GO) test ./internal/exec -run '^$$' -bench . -benchmem | tee BENCH_exec_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment e2e -format json > BENCH_exec.json
	@echo "wrote BENCH_exec_micro.txt and BENCH_exec.json"

bench-engine:
	$(GO) test . -run '^$$' -bench 'BenchmarkQueryEngine|BenchmarkEndToEndInteraction|BenchmarkFig1Crossfilter' -benchmem | tee BENCH_engine_micro.txt
