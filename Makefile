# Build, verify, and benchmark targets. `make check` is the tier-1 gate
# (build + vet + tests); `make bench` records the executor perf trajectory
# that PERFORMANCE.md tracks across PRs.

GO ?= go

.PHONY: check build vet test test-race bench bench-exec bench-engine bench-ivm bench-version bench-smoke

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# test-race is the CI data-race gate (vet runs there alongside it).
test-race:
	$(GO) test -race ./...

# bench runs the executor microbenchmarks with allocation stats and writes
# the experiment-series snapshot to BENCH_exec.json via cmd/dvms-bench.
bench: bench-exec bench-engine bench-ivm bench-version

bench-exec:
	$(GO) test ./internal/exec -run '^$$' -bench . -benchmem | tee BENCH_exec_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment e2e -format json > BENCH_exec.json
	@echo "wrote BENCH_exec_micro.txt and BENCH_exec.json"

bench-engine:
	$(GO) test . -run '^$$' -bench 'BenchmarkQueryEngine|BenchmarkEndToEndInteraction|BenchmarkFig1Crossfilter' -benchmem | tee BENCH_engine_micro.txt

# bench-ivm records the incremental-vs-full trajectory of the delta-driven
# dataflow (per-event brush latency + engine counters) to BENCH_ivm.json.
bench-ivm:
	$(GO) test . -run '^$$' -bench 'BenchmarkIVMBrush' -benchmem | tee BENCH_ivm_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment ivm -n 100000 -format json > BENCH_ivm.json
	@echo "wrote BENCH_ivm_micro.txt and BENCH_ivm.json"

# bench-version records the version-history trajectory: MarkEvent cost under
# the delta log vs the snapshot baseline at 10k/100k/1M rows (micro), plus
# the long-drag engine measurement with versioning counters (BENCH_version.json).
bench-version:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkVersioning' -benchmem | tee BENCH_version_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment version -n 1000000 -format json > BENCH_version.json
	@echo "wrote BENCH_version_micro.txt and BENCH_version.json"

# bench-smoke is the short-form CI benchmark: proves the benchmark harness
# runs end to end without committing CI minutes to full sizes.
bench-smoke:
	$(GO) run ./cmd/dvms-bench -experiment ivm -n 2000 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment a1 -n 300 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment version -n 2000 -format json > /dev/null
	$(GO) test . -run '^$$' -bench 'BenchmarkIVMBrush/n10000$$/' -benchtime 1x > /dev/null
	@echo "benchmark smoke OK"
