# Build, verify, and benchmark targets. `make check` is the tier-1 gate
# (build + vet + tests); `make bench` records the executor perf trajectory
# that PERFORMANCE.md tracks across PRs.

GO ?= go

.PHONY: check build vet test test-race cover fuzz-smoke bench bench-exec bench-engine bench-ivm bench-version bench-topk bench-serve bench-wal bench-cube bench-fused bench-obs obs-gate bench-smoke clean

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# test-race is the CI data-race gate (vet runs there alongside it).
test-race:
	$(GO) test -race ./...

# cover is the CI coverage gate: combined internal/exec + internal/plan
# statement coverage must not drop below the floor, last raised when the
# fused/columnar operator tests landed (PR 9).
COVER_MIN ?= 83.6
cover:
	$(GO) test -coverprofile=cover.out ./internal/exec ./internal/plan
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	ok=$$(awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { print (t >= m) ? 1 : 0 }'); \
	if [ "$$ok" != "1" ]; then \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; \
	fi

# fuzz-smoke gives the order-statistic fuzz target a short CI run; longer
# local runs (-fuzztime 5m+) are how to hunt for real corpus finds.
fuzz-smoke:
	$(GO) test ./internal/exec -run '^$$' -fuzz '^FuzzOrdStat$$' -fuzztime 20s

# bench runs the executor microbenchmarks with allocation stats and writes
# the experiment-series snapshot to BENCH_exec.json via cmd/dvms-bench.
bench: bench-exec bench-engine bench-ivm bench-version bench-topk bench-serve bench-wal bench-cube bench-fused bench-obs

bench-exec:
	$(GO) test ./internal/exec -run '^$$' -bench . -benchmem | tee BENCH_exec_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment e2e -format json > BENCH_exec.json
	@echo "wrote BENCH_exec_micro.txt and BENCH_exec.json"

bench-engine:
	$(GO) test . -run '^$$' -bench 'BenchmarkQueryEngine|BenchmarkEndToEndInteraction|BenchmarkFig1Crossfilter' -benchmem | tee BENCH_engine_micro.txt

# bench-ivm records the incremental-vs-full trajectory of the delta-driven
# dataflow (per-event brush latency + engine counters) to BENCH_ivm.json.
bench-ivm:
	$(GO) test . -run '^$$' -bench 'BenchmarkIVMBrush' -benchmem | tee BENCH_ivm_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment ivm -n 100000 -format json > BENCH_ivm.json
	@echo "wrote BENCH_ivm_micro.txt and BENCH_ivm.json"

# bench-version records the version-history trajectory: MarkEvent cost under
# the delta log vs the snapshot baseline at 10k/100k/1M rows (micro), plus
# the long-drag engine measurement with versioning counters (BENCH_version.json).
bench-version:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkVersioning' -benchmem | tee BENCH_version_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment version -n 1000000 -format json > BENCH_version.json
	@echo "wrote BENCH_version_micro.txt and BENCH_version.json"

# bench-topk records the incremental ORDER BY/LIMIT trajectory: top-k brush
# and single-row tick latency vs RecomputeAll at 10k/100k/1M (micro + the
# BENCH_topk.json series with order-statistic counters and per-event
# delta-row distributions).
bench-topk:
	$(GO) test . -run '^$$' -bench 'BenchmarkTopKBrush' -benchmem | tee BENCH_topk_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment topk -n 1000000 -format json > BENCH_topk.json
	@echo "wrote BENCH_topk_micro.txt and BENCH_topk.json"

# bench-serve records the multi-client serving trajectory: ≥10 sessions at
# 1M shared rows, per-session steady-state brush vs the single-tenant delta
# path, shared-state instantiation counters, and the shared-vs-private
# memory split (BENCH_serve.json), plus the session-rotation micro.
bench-serve:
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServeFanout' -benchmem | tee BENCH_serve_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment serve -n 1000000 -sessions 10 -format json > BENCH_serve.json
	@echo "wrote BENCH_serve_micro.txt and BENCH_serve.json"

# bench-wal records the durability trajectory: per-event WAL append
# overhead by fsync policy against the in-memory baseline, log sizes, and
# crash-recovery time from the delta log — including the 100k-event
# replay-dominated recovery measurement (BENCH_wal.json).
bench-wal:
	$(GO) test ./internal/wal -run '^$$' -bench 'BenchmarkAppend' -benchmem | tee BENCH_wal_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment wal -n 1000000 -format json > BENCH_wal.json
	@echo "wrote BENCH_wal_micro.txt and BENCH_wal.json"

# bench-cube records the data-cube trajectory: steady brush-move latency on
# the index-tile path vs the ordinary delta pipeline at 10k/100k/1M (the
# headline claim is flat µs/event across sizes), plus tile memory and the
# events-to-break-even amortization of the tile build (BENCH_cube.json).
bench-cube:
	$(GO) run ./cmd/dvms-bench -experiment cube -n 1000000 -format json > BENCH_cube.json
	@echo "wrote BENCH_cube.json"

# bench-fused records the operator-fusion trajectory: steady brush-move
# latency on the plain delta pipeline with fused join→aggregate streaming
# vs the row-at-a-time ablation arm at 10k/100k/1M, with the engine's
# BatchRows/FusedApplies/RowFallbacks counters (BENCH_fused.json), plus the
# allocation micro.
bench-fused:
	$(GO) test . -run '^$$' -bench 'BenchmarkFusedBrush' -benchmem | tee BENCH_fused_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment fused -n 1000000 -format json > BENCH_fused.json
	@echo "wrote BENCH_fused_micro.txt and BENCH_fused.json"

# bench-obs records the observability-overhead trajectory: steady cube-brush
# µs/event with the full obs layer (stage histograms, event traces, slow log)
# vs the Config.DisableObs ablation arm at 10k/1M, the instrumented arm's
# latency quantiles, and its Prometheus metrics snapshot (BENCH_obs.json),
# plus the on/off micro pair.
bench-obs:
	$(GO) test ./internal/experiments -run '^$$' -bench 'BenchmarkObsO' -benchmem | tee BENCH_obs_micro.txt
	$(GO) run ./cmd/dvms-bench -experiment obs -n 1000000 -format json > BENCH_obs.json
	@echo "wrote BENCH_obs_micro.txt and BENCH_obs.json"

# obs-gate is the CI overhead gate: a small-n obs run must show the
# instrumented arm within OBS_GATE_MAX/100 of the DisableObs arm (the ISSUE
# acceptance bound is 105 = 5%; the default leaves headroom for shared-runner
# timing noise at smoke sizes — the committed full-size BENCH_obs.json is the
# honest record). The smoke snapshot lands in BENCH_obs_smoke.json
# (gitignored) and CI publishes it as the metrics-snapshot artifact.
OBS_GATE_MAX ?= 110
obs-gate:
	$(GO) run ./cmd/dvms-bench -experiment obs -n 2000 -format json > BENCH_obs_smoke.json
	@x=$$(grep -o '"n2000_overhead_x100": [0-9]*' BENCH_obs_smoke.json | grep -o '[0-9]*$$'); \
	echo "obs overhead x100 = $$x (gate $(OBS_GATE_MAX))"; \
	if [ -z "$$x" ]; then echo "obs-gate: no overhead stat in BENCH_obs_smoke.json"; exit 1; fi; \
	if [ "$$x" -gt "$(OBS_GATE_MAX)" ]; then \
		echo "obs-gate: instrumentation overhead $$x > $(OBS_GATE_MAX) (x100)"; exit 1; \
	fi

# bench-smoke is the short-form CI benchmark: proves the benchmark harness
# runs end to end without committing CI minutes to full sizes. The small-n
# top-k and serve runs land in *_smoke.json (gitignored) so they never
# clobber the committed full-size trajectories; CI publishes both.
bench-smoke:
	$(GO) run ./cmd/dvms-bench -experiment ivm -n 2000 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment a1 -n 300 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment version -n 2000 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment wal -n 2000 -format json > /dev/null
	$(GO) run ./cmd/dvms-bench -experiment topk -n 2000 -format json > BENCH_topk_smoke.json
	$(GO) run ./cmd/dvms-bench -experiment serve -n 2000 -sessions 4 -format json > BENCH_serve_smoke.json
	$(GO) run ./cmd/dvms-bench -experiment cube -n 2000 -format json > BENCH_cube_smoke.json
	$(GO) run ./cmd/dvms-bench -experiment fused -n 2000 -format json > BENCH_fused_smoke.json
	$(GO) test . -run '^$$' -bench 'BenchmarkIVMBrush/n10000$$/' -benchtime 1x > /dev/null
	$(GO) test . -run '^$$' -bench 'BenchmarkTopKBrush/n10000/tick' -benchtime 1x > /dev/null
	$(GO) test ./internal/server -run '^$$' -bench 'BenchmarkServeFanout/n10000/s10' -benchtime 1x > /dev/null
	@echo "benchmark smoke OK"

# clean removes generated local artifacts: coverage profiles, smoke-run
# benchmark snapshots, and the build/fuzz caches' repo-local leavings. The
# committed BENCH_*.json trajectories are records, not build products, and
# are left alone.
clean:
	rm -f cover.out BENCH_*_smoke.json
	$(GO) clean -fuzzcache
