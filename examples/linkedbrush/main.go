// Linkedbrush: the paper's Figure 2 — brushing a revenue/profit scatterplot
// highlights the linked price histogram, expressed two ways: the DeVIL 3
// annotation/join formulation and the DeVIL 4 BACKWARD TRACE formulation.
//
//	go run ./examples/linkedbrush
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	fig2, err := experiments.Fig2LinkedBrush(100, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2.Output)

	cmp, err := experiments.DeVIL4TraceVsJoin(200, 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Output)

	// Save the provenance-variant rendering as PNG.
	eng, err := experiments.NewTraceEngine(100, 7, core.Config{Width: 400, Height: 300})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.FeedStream(experiments.BrushDrag(0, 100, 50, 250, 200)); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("linkedbrush.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eng.Image().WritePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote linkedbrush.png")
}
