// Precision: the paper's §3.4 Precision Interfaces pipeline — generate an
// SDSS-style query log, mine its transformation graph with the rule
// language (Figure 6), and synthesize simplicity- vs coverage-preferring
// interfaces via the widget knapsack (Figure 7).
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/precision"
	"repro/internal/workload"
)

func main() {
	fig6, err := experiments.Fig6(20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig6.Output)

	fig7, err := experiments.Fig7(8000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig7.Output)

	// Demonstrate the rule language on a concrete pair of queries: the
	// paper's example structure, a project-clause tweak.
	rules, err := precision.ParseRules(`
FROM Select//ProjectClauses AS a WHERE a@old SUBSET a@new MATCH AddProjection;`)
	if err != nil {
		log.Fatal(err)
	}
	q1 := "SELECT objID, ra FROM photoObj WHERE ra > 120.5"
	q2 := "SELECT objID, ra, dec FROM photoObj WHERE ra > 120.5"
	t1, err := precision.ParseQueryTree(q1)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := precision.ParseQueryTree(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rule-language demo:")
	fmt.Printf("  q1: %s\n  q2: %s\n", q1, q2)
	fmt.Printf("  diffs: %d, rule matches: %v\n\n", len(precision.DiffTrees(t1, t2)), rules[0].MatchPair(t1, t2))

	// Show the session structure the miner exploits.
	log10 := workload.SDSSLog(10, 3)
	fmt.Println("log sample (sessions of incremental tweaks):")
	for _, e := range log10 {
		fmt.Printf("  s%02d [%s] %s\n", e.Session, e.Template, e.SQL)
	}
}
