// Progressive: the paper's §3.3 continuously-streaming framework — Haar
// progressive tile encoding, the mouse intent model (82% @ 200 ms), and the
// concave-utility scheduler re-run every 50 ms, compared against
// round-robin and classic request-response.
//
//	go run ./examples/progressive
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	// Progressive encoding demo: reconstruction quality vs prefix length.
	tiles, err := stream.SyntheticTiles(1, 32, 7)
	if err != nil {
		log.Fatal(err)
	}
	tile := tiles[0]
	fmt.Println("progressive tile decode (32x32 aggregate tile, Haar wavelets):")
	fmt.Printf("%10s %12s %10s\n", "coeffs", "energy", "PSNR dB")
	for _, k := range []int{1, 4, 16, 64, 256, 1024} {
		approx, err := tile.Decode(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %11.1f%% %10.1f\n", k, tile.Utility(k)*100, stream.PSNR(tile.Data, approx))
	}
	fmt.Println("\na prefix of any length decodes to a coherent lower-resolution tile,")
	fmt.Println("so the client can always render the partial data it has received.")

	// Intent model demo on one trace.
	widgets := workload.WidgetGrid(4, 3, 800, 600)
	model := stream.NewIntentModel(widgets)
	trace := workload.MouseTraces(1, widgets, 20, 10, 42)[0]
	half := trace.Points[:len(trace.Points)/2]
	probs := model.Predict(half)
	fmt.Printf("\nintent mid-trace: top widget %d with P=%.2f (true target %d), entropy %.2f bits\n",
		stream.Top(probs), probs[stream.Top(probs)], trace.Target, stream.Entropy(probs))

	// Full §3.3 experiment: accuracy + scheduler comparison.
	res, err := experiments.StreamExperiment(600, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + res.Output)
}
