// Crossfilter: the paper's Figure 1 — a revenue breakdown over TPC-H-like
// data with five linked group-by-sum charts and an interactive year-range
// selection that crossfilters the others.
//
//	go run ./examples/crossfilter
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	result, err := experiments.Fig1Crossfilter(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.Output)

	// Show an individual interaction cycle too: select, inspect, undo.
	eng, err := experiments.NewCrossfilterEngine(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.FeedStream(experiments.YearSelectionDrag()); err != nil {
		log.Fatal(err)
	}
	sel, err := eng.Relation("selected_years")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive selection holds %d years:\n%s\n", sel.Len(), sel)
	if err := eng.Undo(); err != nil {
		log.Fatal(err)
	}
	sel, _ = eng.Relation("selected_years")
	fmt.Printf("after undo the selection is empty again: %d years\n", sel.Len())
}
