// Asyncpolicies: the paper's §3.2 study (Figures 4 and 5) — how
// concurrency-control policies for interactive visualizations affect task
// completion under response latency, including the MVCC small-multiples
// design.
//
//	go run ./examples/asyncpolicies
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cc"
	"repro/internal/render"
)

func main() {
	// Figure 5: the full study on both tasks.
	for _, task := range []cc.Task{cc.Threshold, cc.Trend} {
		study := cc.RunStudy(cc.StudyParams{Participants: 40, Task: task, Seed: 7})
		fmt.Println(study.Format())
	}

	// A single participant under each policy, with behaviour metrics: the
	// paper's "concurrency-friendly policies allow users to generate more
	// and make use of concurrent requests".
	fmt.Println("single participant under 2.5s mean delay:")
	fmt.Printf("%-12s %12s %9s %10s %11s\n", "policy", "completion", "requests", "redundant", "max inflight")
	for _, pol := range cc.Policies {
		out := cc.Simulate(cc.Params{Policy: pol, MeanDelayMs: 2500, Seed: 11})
		fmt.Printf("%-12s %11.1fs %9d %10d %12d\n",
			pol, out.CompletionMs/1000, out.Requests, out.Redundant, out.MaxInflight)
	}

	// Figure 4b: render the MVCC small-multiples strip — one mini bar chart
	// per in-flight request.
	img := render.NewImage(640, 120)
	months := []struct {
		label string
		bars  []float64
	}{
		{"JAN", []float64{30, 55, 40}},
		{"FEB", []float64{50, 35, 60}},
		{"MAR", []float64{25, 70, 45}},
		{"APR", []float64{65, 40, 30}},
	}
	for i, m := range months {
		x0 := float64(i*160 + 10)
		img.StrokeRect(x0, 10, 140, 100, render.RGBA{A: 255})
		img.DrawText(int(x0)+4, 14, m.label, render.RGBA{A: 255})
		for b, h := range m.bars {
			img.FillRect(x0+12+float64(b)*42, 104-h, 30, h, render.RGBA{R: 70, G: 130, B: 180, A: 255})
		}
	}
	f, err := os.Create("mvcc_small_multiples.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := img.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote mvcc_small_multiples.png (Figure 4b style)")
}
