// Quickstart: define a static scatterplot in DeVIL, add a drag-selection
// interaction, feed a synthetic drag, and inspect relations and pixels.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dvms "repro"
)

const program = `
-- base data: a handful of points
CREATE TABLE Pts (id int, x float, y float, label string);
INSERT INTO Pts VALUES
  (1,  60,  60, 'alpha'),
  (2, 140, 100, 'beta'),
  (3, 220, 160, 'gamma'),
  (4, 300,  80, 'delta'),
  (5, 360, 220, 'epsilon');

-- marks relation: one circle per point (DeVIL 1 style)
MARKS = SELECT 7 AS radius, 'steelblue' AS stroke, 'steelblue' AS fill,
               x AS center_x, y AS center_y, id
        FROM Pts;

-- compound drag event (DeVIL 2 style)
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M*, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

-- interactive selection: hit test against pre-interaction marks (DeVIL 3)
picked = SELECT DISTINCT MK.id
  FROM C, MARKS@vnow-1 AS MK
  WHERE in_rectangle(MK.center_x, MK.center_y,
        (SELECT min(x) FROM C), (SELECT min(y) FROM C),
        (SELECT max(x + dx) FROM C), (SELECT max(y + dy) FROM C));

-- recolor selected marks red
MARKS = SELECT 7 AS radius, 'steelblue' AS stroke, 'steelblue' AS fill,
               x AS center_x, y AS center_y, id
        FROM Pts WHERE id NOT IN picked
        UNION
        SELECT 7 AS radius, 'red' AS stroke, 'red' AS fill,
               x AS center_x, y AS center_y, id
        FROM Pts WHERE id IN picked;

P = render(SELECT * FROM MARKS);
`

func main() {
	sys := dvms.New(dvms.Config{Width: 420, Height: 280})
	if err := sys.Load(program); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded program; views:", sys.Views())

	// Drag a selection box over points 2 and 3. Note the box extends to
	// the last MOUSE_MOVE: per Table 1 semantics the MOUSE_UP terminates
	// the interaction without emitting a row.
	if _, err := sys.FeedStream(dvms.Drag(0, 120, 80, 255, 195, 4)); err != nil {
		log.Fatal(err)
	}

	picked, err := sys.Relation("picked")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected after drag (%d rows):\n%s\n", picked.Len(), picked)

	fmt.Println("scatterplot (terminal rendering):")
	fmt.Print(sys.ASCII(8, 12))

	if err := sys.SavePNG("quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote quickstart.png")

	// Undo restores the pre-selection version (§2.1.3 undo via versioning).
	if err := sys.Undo(); err != nil {
		log.Fatal(err)
	}
	picked, _ = sys.Relation("picked")
	fmt.Printf("after undo: %d selected\n", picked.Len())
}
